"""Static ILP / dependence-height analysis: an IPC upper bound per binary.

Works on the reconstructed CFG through the per-ISA analysis support — the
same :class:`~repro.analysis.support.BlockDeps` dependence graphs drive
every ISA (distance slots for STRAIGHT, logical registers for the gpr
models), so the pass is ISA-generic by construction.

Two measurements:

* **per-block critical path** — the latency-weighted longest dataflow
  chain through each basic block, using each op class's *minimum* latency
  (L1-hit loads).  ``instructions / critical_path`` is the block's local
  ILP, an upper bound on any machine's sustained IPC while executing that
  block from a steady state.
* **loop recurrence** — for every *simple* loop (each block has exactly
  one in-loop successor, so the loop is one cycle of blocks), the body is
  concatenated in cycle order and its dependence graph rebuilt as one
  sequence.  A read of a live-in key that the body itself defines at its
  exit is a loop-carried dependence; closing it through the body's
  intra-iteration chains yields a dependence cycle whose total latency
  bounds the steady-state initiation interval from below (any closed
  dependence walk's mean is at most the true critical recurrence, so the
  derived IPC limit stays an *upper* bound).  A loop of ``n`` instructions
  with recurrence ``C`` cannot retire faster than ``n / C`` per cycle.

The program-level ``static_ipc_bound(width)`` is ``min(width, best loop
limit)`` — programs spend their time in loops, so the most permissive
loop's limit caps sustained IPC; a loop with no recurrence (or a program
with no detected loop) is bounded only by the machine width.  The
``static_ilp`` experiment cross-checks the bound against measured
simulator IPC on the full workload x config x ISA grid.
"""


class LoopBound:
    """One simple loop's static throughput limit."""

    __slots__ = ("function", "header", "blocks", "instructions",
                 "recurrence", "ipc_limit")

    def __init__(self, function, header, blocks, instructions, recurrence):
        self.function = function
        self.header = header
        self.blocks = blocks
        self.instructions = instructions
        self.recurrence = recurrence
        #: None: no closable recurrence — the loop is width-bound.
        self.ipc_limit = (
            instructions / recurrence if recurrence > 0 else None
        )

    def as_dict(self):
        return {
            "function": self.function,
            "header": self.header,
            "blocks": list(self.blocks),
            "instructions": self.instructions,
            "recurrence": self.recurrence,
            "ipc_limit": (
                None if self.ipc_limit is None else round(self.ipc_limit, 4)
            ),
        }


class StaticIlpReport:
    """Per-block critical paths, loop bounds, and the program IPC bound."""

    def __init__(self, isa, blocks, loops):
        self.isa = isa
        self.blocks = blocks  # list of per-block dicts
        self.loops = loops    # list of LoopBound

    def ipc_bound(self, width):
        """Static upper bound on sustained IPC at the given issue width."""
        best = None
        for loop in self.loops:
            if loop.ipc_limit is None:
                return float(width)  # a recurrence-free loop is width-bound
            if best is None or loop.ipc_limit > best:
                best = loop.ipc_limit
        if best is None:
            return float(width)
        return min(float(width), best)

    def as_dict(self, widths=(2, 4)):
        return {
            "isa": self.isa,
            "blocks": self.blocks,
            "loops": [loop.as_dict() for loop in self.loops],
            "ipc_bound": {
                str(width): round(self.ipc_bound(width), 4)
                for width in widths
            },
        }

    def text(self, max_blocks=12):
        lines = [f"static ILP [{self.isa}]: {len(self.blocks)} blocks, "
                 f"{len(self.loops)} simple loops"]
        ranked = sorted(
            self.blocks, key=lambda b: b["instructions"], reverse=True
        )
        for entry in ranked[:max_blocks]:
            lines.append(
                f"  block @{entry['leader']:5d} [{entry['function']}] "
                f"n={entry['instructions']:3d} cp={entry['critical_path']:3d} "
                f"ilp={entry['local_ilp']:.2f}"
            )
        for loop in self.loops:
            limit = ("width-bound" if loop.ipc_limit is None
                     else f"{loop.ipc_limit:.2f}")
            lines.append(
                f"  loop @{loop.header:5d} [{loop.function}] "
                f"n={loop.instructions} C={loop.recurrence} ipc<={limit}"
            )
        for width in (2, 4):
            lines.append(f"  ipc_bound({width}-way) = "
                         f"{self.ipc_bound(width):.3f}")
        return "\n".join(lines)


def _block_critical_path(program, support, indices):
    """Latency-weighted longest dataflow chain through one sequence."""
    deps = support.block_deps(program, indices)
    finish = {}
    critical = 0
    for pos, index in enumerate(deps.indices):
        start = 0
        for ref in deps.producers[pos]:
            if ref is not None and ref[0] == "intra":
                start = max(start, finish[ref[1]])
        finish[index] = start + support.latency(program, index)
        if finish[index] > critical:
            critical = finish[index]
    return critical


def _simple_cycle_order(func, head, tail):
    """Blocks of the natural loop of back edge ``tail -> head`` in cycle
    order, or ``None`` when the loop is not one simple cycle."""
    loop = {head}
    work = [tail]
    while work:
        leader = work.pop()
        if leader in loop:
            continue
        loop.add(leader)
        work.extend(func.blocks[leader].preds)
    order = [head]
    current = head
    while True:
        inside = [s for s in func.blocks[current].succs if s in loop]
        if len(inside) != 1:
            return None
        current = inside[0]
        if current == head:
            break
        if current in loop and current in order:
            return None  # re-entered mid-loop: not a single cycle
        order.append(current)
    if len(order) != len(loop):
        return None
    return order


def _back_edges(func):
    """``(tail, head)`` DFS back edges of the function's block graph."""
    edges = []
    state = {}  # leader -> "active" | "done"
    stack = [(func.entry, iter(func.blocks[func.entry].succs))]
    state[func.entry] = "active"
    while stack:
        leader, succs = stack[-1]
        advanced = False
        for succ in succs:
            mark = state.get(succ)
            if mark == "active":
                edges.append((leader, succ))
            elif mark is None:
                state[succ] = "active"
                stack.append((succ, iter(func.blocks[succ].succs)))
                advanced = True
                break
        if not advanced:
            state[leader] = "done"
            stack.pop()
    return edges


def _loop_recurrence(program, support, body):
    """Longest closable loop-carried dependence cycle (0: none found).

    ``body`` is the concatenated instruction sequence of one simple cycle.
    Every ``("in", key)`` read whose key the body redefines at exit
    (``out_defs``) is a distance-1 carried dependence; the cycle closes
    through the body's intra-iteration chains from consumer back to
    producer.  Multi-iteration-distance cycles are ignored — that only
    *under*-estimates the recurrence, keeping the IPC limit an upper bound.
    """
    deps = support.block_deps(program, body)
    pos_of = {index: pos for pos, index in enumerate(deps.indices)}
    lat = [support.latency(program, index) for index in deps.indices]
    edges_in = []
    carried = []  # (producer pos in previous iteration, consumer pos)
    for pos, refs in enumerate(deps.producers):
        incoming = []
        for ref in refs:
            if ref is None:
                continue
            if ref[0] == "intra":
                incoming.append(pos_of[ref[1]])
            elif ref[1] in deps.out_defs:
                carried.append((pos_of[deps.out_defs[ref[1]]], pos))
        edges_in.append(incoming)

    recurrence = 0
    minus_inf = float("-inf")
    for producer, consumer in carried:
        if consumer > producer:
            continue  # cannot close with a single carried edge
        # Longest latency path consumer -> producer over intra edges.
        best = [minus_inf] * (producer + 1)
        best[consumer] = lat[consumer]
        for pos in range(consumer + 1, producer + 1):
            incoming = max(
                (best[q] for q in edges_in[pos] if q >= consumer),
                default=minus_inf,
            )
            if incoming != minus_inf:
                best[pos] = incoming + lat[pos]
        if best[producer] != minus_inf and best[producer] > recurrence:
            recurrence = int(best[producer])
    return recurrence


def analyze_ilp(program, support, cfg=None):
    """Static ILP report for one linked binary (any registered ISA)."""
    from repro.analysis.cfg import build_cfg

    if cfg is None:
        cfg = build_cfg(program, support)

    blocks = []
    loops = []
    seen_loops = set()
    for func in cfg.functions:
        for leader in sorted(func.blocks):
            indices = func.blocks[leader].indices
            critical = _block_critical_path(program, support, indices)
            blocks.append(
                {
                    "leader": leader,
                    "function": func.name,
                    "instructions": len(indices),
                    "critical_path": critical,
                    "local_ilp": round(
                        len(indices) / critical if critical else 1.0, 4
                    ),
                }
            )
        for tail, head in _back_edges(func):
            order = _simple_cycle_order(func, head, tail)
            if order is None:
                continue
            key = frozenset(order)
            if key in seen_loops:
                continue
            seen_loops.add(key)
            body = []
            for block_leader in order:
                body.extend(func.blocks[block_leader].indices)
            recurrence = _loop_recurrence(program, support, body)
            loops.append(
                LoopBound(func.name, head, tuple(order), len(body),
                          recurrence)
            )
    loops.sort(key=lambda loop: (loop.function, loop.header))
    return StaticIlpReport(support.name, blocks, loops)
