"""Binary-level CFG reconstruction for linked programs of any registered ISA.

Rebuilds, from a linked program alone, the function partition and
per-function basic-block graph every static analysis walks.  The decoding
of control flow is delegated to a per-ISA
:class:`~repro.analysis.support.IsaAnalysisSupport` object (the
descriptor's ``analysis`` hook); the discovery algorithm itself is
ISA-generic:

* functions are discovered from the entry point, every direct call target,
  and (iteratively) the lowest still-unvisited labelled instruction — which
  picks up functions that are never called;
* a call is *not* a block terminator: intra-procedurally it returns to the
  next instruction, so the resume point stays inside the block and the
  analyses model the callee as an opaque event;
* returns and halts terminate, conditional branches fall through and
  branch — exactly which mnemonics those are is the support object's
  business (STRAIGHT: ``JR``/``HALT``/``BEZ``/``BNZ``; RV32IM: ``jalr``
  conventions, exit ``ecall``, B-format branches).

Structural problems found while decoding edges (targets outside the text
segment) are collected as ``issues`` — ``(code, index, message)`` tuples —
for the verifiers to turn into diagnostics.
"""


class BinBlock:
    """One basic block: a contiguous run of instruction indices."""

    __slots__ = ("start", "indices", "succs", "preds")

    def __init__(self, start):
        self.start = start
        self.indices = []
        self.succs = []  # successor block leader indices
        self.preds = []

    def __repr__(self):
        return f"BinBlock({self.start}..{self.indices[-1] if self.indices else '?'})"


class BinFunction:
    """One discovered function: entry index, reachable set, block graph."""

    def __init__(self, name, entry):
        self.name = name
        self.entry = entry
        self.indices = set()
        self.blocks = {}  # leader index -> BinBlock
        self.call_sites = []  # (index, callee entry index | None)
        self.returns = []  # indices of return instructions

    def block_order(self):
        return [self.blocks[leader] for leader in sorted(self.blocks)]

    def __repr__(self):
        return f"BinFunction({self.name!r}, entry={self.entry})"


class BinCFG:
    """The whole program's reconstructed control-flow structure."""

    def __init__(self, program, support=None):
        self.program = program
        self.support = support
        self.functions = []
        self.entry_of_index = {}  # instruction index -> owning function entry
        self.issues = []  # (code, index, message)
        self.unreachable = []  # instruction indices in no function

    def function_at(self, entry):
        for func in self.functions:
            if func.entry == entry:
                return func
        return None


def _default_support():
    from repro.straight.analysis import StraightAnalysisSupport

    return StraightAnalysisSupport()


def successors(program, index):
    """STRAIGHT successor decoding (kept for backward compatibility).

    New callers should go through a support object's ``successors``.
    """
    return _default_support().successors(program, index)


def _labels_by_index(program):
    table = {}
    for label, index in program.labels.items():
        table.setdefault(index, []).append(label)
    for labels in table.values():
        labels.sort(key=lambda name: (name.count("."), name))
    return table


def build_cfg(program, support=None):
    """Reconstruct the :class:`BinCFG` of a linked program.

    ``support`` is the ISA's analysis-support object; it defaults to
    STRAIGHT's, preserving the original single-ISA signature.
    """
    if support is None:
        support = _default_support()
    cfg = BinCFG(program, support)
    labels_at = _labels_by_index(program)
    n = len(program.instrs)
    entry_index = program.index_of_pc(program.entry_pc)

    # Pass 1: discover call targets so every callee becomes a function root.
    queue = []
    seen_entries = set()

    def add_entry(index, name=None):
        if index in seen_entries or not 0 <= index < n:
            return
        seen_entries.add(index)
        if name is None:
            names = labels_at.get(index)
            name = names[0] if names else f"fn_{index}"
        queue.append(BinFunction(name, index))

    add_entry(entry_index)
    for index in range(n):
        _, call_target, _ = support.successors(program, index)
        if call_target is not None:
            add_entry(call_target)

    # Pass 2: claim reachable code per function; then sweep leftover labelled
    # code as additional (never-called) functions until nothing is claimed.
    claimed = set()
    position = 0
    issue_seen = set()
    while True:
        while position < len(queue):
            func = queue[position]
            position += 1
            cfg.functions.append(func)
            worklist = [func.entry]
            while worklist:
                index = worklist.pop()
                if index in func.indices:
                    continue
                func.indices.add(index)
                claimed.add(index)
                cfg.entry_of_index.setdefault(index, func.entry)
                succs, call_target, issue = support.successors(program, index)
                if issue is not None and (issue[0], index) not in issue_seen:
                    issue_seen.add((issue[0], index))
                    cfg.issues.append((issue[0], index, issue[1]))
                if support.is_call(program, index):
                    func.call_sites.append((index, call_target))
                elif support.is_return(program, index):
                    func.returns.append(index)
                worklist.extend(s for s in succs if s not in func.indices)
        fresh = None
        for index in range(n):
            if index not in claimed and index in labels_at:
                fresh = index
                break
        if fresh is None:
            break
        add_entry(fresh)
        if position >= len(queue):  # add_entry rejected it (already seen)
            break

    cfg.unreachable = [i for i in range(n) if i not in claimed]

    for func in cfg.functions:
        _partition_blocks(program, support, func)
    return cfg


def _partition_blocks(program, support, func):
    """Split a function's reachable indices into basic blocks with edges."""
    leaders = {func.entry}
    for index in func.indices:
        succs, _, _ = support.successors(program, index)
        if support.ends_block(program, index):
            leaders.update(s for s in succs if s in func.indices)
            follower = index + 1
            if follower in func.indices:
                leaders.add(follower)

    for leader in leaders:
        func.blocks[leader] = BinBlock(leader)

    for leader in sorted(leaders):
        block = func.blocks[leader]
        index = leader
        while True:
            block.indices.append(index)
            succs, _, _ = support.successors(program, index)
            succs = [s for s in succs if s in func.indices]
            ends = (
                not succs
                or support.ends_block(program, index)
                or (index + 1 in leaders)
                or len(succs) > 1
                or (succs and succs[0] != index + 1)
            )
            if ends:
                block.succs = succs
                break
            index += 1

    for block in func.blocks.values():
        for succ in block.succs:
            func.blocks[succ].preds.append(block.start)
