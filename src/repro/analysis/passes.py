"""Performance-oriented dataflow passes on the generic analysis engine.

Two gpr-model analyses over the reconstructed CFG, both instances of the
:mod:`repro.analysis.framework` fixpoint engine:

* **liveness** — a backward may-analysis over register sets.  The exit
  boundary keeps the calling convention honest (callee-saved registers,
  ``sp`` and the ``a0``/``a1`` return slots are live at every function
  exit); calls kill the caller-saved registers and read the callee's
  argument pack.  A *pure* instruction whose destination is dead right
  after the write is flagged ``ANL101`` — the value can never be observed.
* **value ranges** — a forward analysis mapping registers to signed-32
  intervals ``(lo, hi)``.  Absent registers are unknown (TOP); loop
  convergence comes from a per-entry widening generation: two interval
  hulls are tolerated at a join, the third widens the register to TOP, so
  the lattice has finite height without a separate widening phase.
  The converged ranges feed ``ANL102`` (a branch whose operands are both
  compile-time constants — its direction never varies) and ``ANL103``
  (a divide/remainder whose divisor is provably zero).

Soundness contracts (the property tests pin both): a register the
dead-code pass marks dead is never read before its next write in any
concrete execution, and every concrete register value observed by the
interpreter lies inside the pass's converged interval for that program
point.
"""

from repro.analysis.framework import solve_backward, solve_forward
from repro.riscv.analysis import CALL_CLOBBERED, CALL_DEFINED, SP
from repro.riscv.isa import REG_NAMES

INT32_MIN = -(1 << 31)
INT32_MAX = (1 << 31) - 1

#: Interval hulls tolerated per join before a register widens to TOP.
WIDEN_LIMIT = 2

#: Registers the convention keeps live at every function exit: callee-saved,
#: the stack pointer, and the ``a0``/``a1`` return-value slots.
EXIT_LIVE = frozenset({SP, 8, 9, 10, 11} | set(range(18, 28)))

#: op classes whose only effect is the destination write.
_PURE_CLASSES = frozenset({"alu", "mul", "div", "load"})

_DIV_MNEMONICS = frozenset({"DIV", "DIVU", "REM", "REMU"})


def _reg(number):
    return REG_NAMES[number]


# --------------------------------------------------------------------------
# Liveness (backward) and dead definitions
# --------------------------------------------------------------------------

def _call_num_args(program, support, cfg, manifest_funcs, index):
    """Argument count at a call site (manifest-refined, else all eight)."""
    _, call_target, _ = support.successors(program, index)
    if call_target is not None:
        callee = cfg.function_at(call_target)
        if callee is not None:
            fmanifest = manifest_funcs.get(callee.name)
            if fmanifest is not None:
                return int(fmanifest["num_args"])
    return 8


def _live_step(program, support, cfg, manifest_funcs, live, index):
    """One instruction of the backward transfer: live-after -> live-before."""
    if support.is_call(program, index):
        num_args = _call_num_args(program, support, cfg, manifest_funcs, index)
        live = live - CALL_DEFINED - CALL_CLOBBERED
        live = live | frozenset(range(10, 10 + num_args))
        return live | frozenset(support.uses(program, index))
    defs = support.defs(program, index)
    if defs:
        live = live - frozenset(defs)
    return live | frozenset(support.uses(program, index))


def gpr_liveness(program, support, cfg, func, manifest=None):
    """Converged live-at-block-exit sets: ``{leader: frozenset(regs)}``."""
    manifest_funcs = (manifest or {}).get("functions", {})

    def transfer(leader, out_state):
        live = out_state
        for index in reversed(func.blocks[leader].indices):
            live = _live_step(program, support, cfg, manifest_funcs, live,
                              index)
        return live

    return solve_backward(
        func, EXIT_LIVE, transfer, lambda a, b: a | b, bottom=frozenset()
    )


def gpr_dead_defs(program, support, cfg, manifest=None):
    """``(index, reg)`` pairs of pure writes no path can ever read.

    ``sp`` and the zero register are exempt (bookkeeping / hardwired), as
    are calls — their write is the return address, never "dead".
    """
    manifest_funcs = (manifest or {}).get("functions", {})
    dead = []
    for func in cfg.functions:
        out_states = gpr_liveness(program, support, cfg, func, manifest)
        for leader in sorted(out_states):
            live = out_states[leader]
            for index in reversed(func.blocks[leader].indices):
                instr = program.instrs[index]
                if (
                    not support.is_call(program, index)
                    and instr.op_class in _PURE_CLASSES
                    and instr.rd not in (None, 0, SP)
                    and support.defs(program, index)
                    and instr.rd not in live
                ):
                    dead.append((index, instr.rd))
                live = _live_step(
                    program, support, cfg, manifest_funcs, live, index
                )
    dead.sort()
    return dead


# --------------------------------------------------------------------------
# Value ranges (forward, widened intervals)
# --------------------------------------------------------------------------

def _join_ranges(a, b):
    """Per-register interval join; hulls widen to TOP after WIDEN_LIMIT."""
    out = {}
    for reg, ra in a.items():
        rb = b.get(reg)
        if rb is None:
            continue
        if ra == rb:
            out[reg] = ra
            continue
        gen = max(ra[2], rb[2]) + 1
        if gen > WIDEN_LIMIT:
            continue
        out[reg] = (min(ra[0], rb[0]), max(ra[1], rb[1]), gen)
    return out


def _get_range(state, reg):
    """``(lo, hi, gen)`` for a register, ``None`` when unknown (TOP)."""
    if reg == 0 or reg is None:
        return (0, 0, 0)
    return state.get(reg)


def _set_range(state, rd, lo, hi, gen):
    """Assign ``rd``'s interval; out-of-signed-32 results widen to TOP
    (the machine wraps, the interval does not)."""
    if INT32_MIN <= lo and hi <= INT32_MAX:
        state[rd] = (lo, hi, gen)
    else:
        state.pop(rd, None)


def _range_step(program, support, state, index):
    """One instruction of the forward transfer (mutates ``state``)."""
    if support.is_call(program, index):
        for reg in CALL_CLOBBERED | CALL_DEFINED:
            state.pop(reg, None)
        return
    instr = program.instrs[index]
    defs = support.defs(program, index)
    if not defs:
        return
    rd = instr.rd
    m = instr.mnemonic
    imm = instr.imm or 0
    r1 = _get_range(state, instr.rs1)
    r2 = _get_range(state, instr.rs2)

    if m == "LUI":
        value = (imm << 12) & 0xFFFFFFFF
        if value >= 1 << 31:
            value -= 1 << 32
        state[rd] = (value, value, 0)
    elif m == "AUIPC":
        value = program.text_base + index * 4 + (imm << 12)
        _set_range(state, rd, value, value, 0)
    elif m == "ADDI" and r1 is not None:
        _set_range(state, rd, r1[0] + imm, r1[1] + imm, r1[2])
    elif m == "ADD" and r1 is not None and r2 is not None:
        _set_range(state, rd, r1[0] + r2[0], r1[1] + r2[1],
                   max(r1[2], r2[2]))
    elif m == "SUB" and r1 is not None and r2 is not None:
        _set_range(state, rd, r1[0] - r2[1], r1[1] - r2[0],
                   max(r1[2], r2[2]))
    elif m == "MUL" and r1 is not None and r2 is not None:
        corners = [a * b for a in (r1[0], r1[1]) for b in (r2[0], r2[1])]
        _set_range(state, rd, min(corners), max(corners), max(r1[2], r2[2]))
    elif m == "ANDI" and imm >= 0:
        state[rd] = (0, imm, 0 if r1 is None else r1[2])
    elif m in ("SLT", "SLTU", "SLTI", "SLTIU"):
        state[rd] = (0, 1, 0)
    elif m == "SRLI" and imm > 0:
        state[rd] = (0, (1 << (32 - imm)) - 1, 0)
    elif m == "SRAI" and r1 is not None:
        state[rd] = (r1[0] >> imm, r1[1] >> imm, r1[2])
    elif m == "SLLI" and r1 is not None:
        _set_range(state, rd, r1[0] << imm, r1[1] << imm, r1[2])
    else:  # loads, logicals, divides, shifts by register, links: unknown
        state.pop(rd, None)


def gpr_value_ranges(program, support, cfg):
    """Converged pre-instruction intervals: ``{index: {reg: (lo, hi)}}``.

    Covers every instruction reachable from a function entry; an absent
    register is unknown.  Every interval is a sound enclosure of the
    register's concrete (signed) value at that program point.
    """
    table = {}
    for func in cfg.functions:
        def transfer(leader, state):
            state = dict(state)
            for index in func.blocks[leader].indices:
                _range_step(program, support, state, index)
            return state

        in_states = solve_forward(func, {0: (0, 0, 0)}, transfer,
                                  _join_ranges)
        for leader in sorted(in_states):
            state = dict(in_states[leader])
            for index in func.blocks[leader].indices:
                table[index] = {
                    reg: (lo, hi) for reg, (lo, hi, _) in state.items()
                }
                _range_step(program, support, state, index)
    return table


def _constant(table_entry, reg):
    """The register's single possible value at this point, else ``None``."""
    if reg == 0 or reg is None:
        return 0
    interval = table_entry.get(reg)
    if interval is not None and interval[0] == interval[1]:
        return interval[0]
    return None


# --------------------------------------------------------------------------
# Lint driver (the ``lint=True`` tier of the gpr verifier)
# --------------------------------------------------------------------------

def run_gpr_lints(program, support, cfg, report, manifest=None):
    """ANL101/ANL102/ANL103 over a verified gpr-model binary."""
    for index, reg in gpr_dead_defs(program, support, cfg, manifest):
        instr = program.instrs[index]
        report.emit(
            "ANL101",
            f"{instr.mnemonic} writes {_reg(reg)} but no path reads the "
            "value before it is overwritten or the function exits",
            index=index,
        )
    ranges = gpr_value_ranges(program, support, cfg)
    for index, entry in sorted(ranges.items()):
        instr = program.instrs[index]
        if instr.spec.fmt == "B":
            v1 = _constant(entry, instr.rs1)
            v2 = _constant(entry, instr.rs2)
            if v1 is not None and v2 is not None:
                report.emit(
                    "ANL102",
                    f"{instr.mnemonic} compares constants {v1} and {v2}; "
                    "the branch direction never varies",
                    index=index,
                )
        if instr.mnemonic in _DIV_MNEMONICS:
            if _constant(entry, instr.rs2) == 0:
                report.emit(
                    "ANL103",
                    f"{instr.mnemonic} divides by "
                    f"{_reg(instr.rs2) if instr.rs2 else 'zero'}, which is "
                    "provably zero here",
                    index=index,
                )
