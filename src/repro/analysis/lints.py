"""Lint passes over a verified STRAIGHT binary.

These are advisory (warning/info) findings layered on the consumption facts
the verifier collected; they flag code-quality problems — dead producers,
RMOVs the RE+ optimizations should have removed, long relay chains — rather
than correctness violations.
"""

#: op classes whose instructions have no side effect besides their product.
_PURE_CLASSES = ("alu", "mul", "div", "load")

#: An RMOV chain this long suggests a missed sinking/demotion opportunity.
RELAY_CHAIN_LIMIT = 3


def run_lints(ctx, cfg, report):
    _lint_unreachable(ctx, cfg, report)
    _lint_dead_destinations(ctx, cfg, report)
    _lint_relay_chains(ctx, cfg, report)


def _lint_unreachable(ctx, cfg, report):
    """STR105: instructions no discovered function can reach."""
    if not cfg.unreachable:
        return
    run_start = None
    previous = None
    runs = []
    for index in cfg.unreachable:
        if run_start is None:
            run_start = previous = index
        elif index == previous + 1:
            previous = index
        else:
            runs.append((run_start, previous))
            run_start = previous = index
    runs.append((run_start, previous))
    for start, end in runs:
        count = end - start + 1
        report.emit(
            "STR105",
            f"{count} instruction(s) unreachable from any function entry",
            index=start,
            data={"count": count},
        )


def _lint_dead_destinations(ctx, cfg, report):
    """STR101/STR102: pure producers whose value no path ever consumes.

    Runs only on manifest-annotated functions — for hand-written assembly
    the verifier cannot know which trailing producers feed the surrounding
    convention.  Exempt are producers consumed through the calling
    convention: argument packs (marked consumed at call-site checking) and
    the return-value slot before each JR.
    """
    program = ctx.program
    for func in cfg.functions:
        result = ctx.results.get(func.entry)
        if result is None or not result.annotated:
            continue
        exempt = result.pre_jr_tags
        for index in sorted(func.indices):
            instr = program.instrs[index]
            if instr.mnemonic in ("SPADD", "NOP"):
                continue
            if instr.op_class not in _PURE_CLASSES:
                continue
            if index in ctx.consumed or index in exempt:
                continue
            if instr.mnemonic == "RMOV":
                report.emit(
                    "STR102",
                    "RMOV re-produces a value no path consumes "
                    "(missed redundancy-elimination opportunity)",
                    index=index,
                    function=func.name,
                )
            else:
                report.emit(
                    "STR101",
                    f"{instr.mnemonic} result is never consumed on any path",
                    index=index,
                    function=func.name,
                )


def _relay_depth(ctx, index, memo, guard):
    """Length of the RMOV chain ending at ``index`` (1 = a lone RMOV)."""
    if index in memo:
        return memo[index]
    if index in guard:
        return 0  # refresh cycle through a loop; not a linear relay chain
    guard.add(index)
    deepest = 0
    for tag in ctx.rmov_src_tags.get(index, ()):
        if isinstance(tag, int) and ctx.program.instrs[tag].mnemonic == "RMOV":
            depth = _relay_depth(ctx, tag, memo, guard)
            if depth > deepest:
                deepest = depth
    guard.discard(index)
    memo[index] = deepest + 1
    return memo[index]


def _lint_relay_chains(ctx, cfg, report):
    """STR103: distance-bounding relays stacked ``RELAY_CHAIN_LIMIT`` deep."""
    memo = {}
    for index in ctx.rmov_src_tags:
        _relay_depth(ctx, index, memo, set())
    for index, depth in sorted(memo.items()):
        if depth < RELAY_CHAIN_LIMIT:
            continue
        if index in ctx.rmov_source_of:
            continue  # report only the tail of each chain
        entry = cfg.entry_of_index.get(index)
        func = cfg.function_at(entry) if entry is not None else None
        report.emit(
            "STR103",
            f"value travels through a chain of {depth} RMOV relays; "
            "consider sinking the producer or raising max_distance",
            index=index,
            function=func.name if func else None,
            data={"depth": depth},
        )
