"""Per-ISA analysis support: the protocol descriptors plug into the engine.

An :class:`IsaAnalysisSupport` instance is what an
:class:`~repro.isa.descriptor.IsaDescriptor` returns from its ``analysis``
hook.  It captures everything the generic machinery
(:mod:`repro.analysis.cfg`, :mod:`repro.analysis.framework`,
:mod:`repro.analysis.passes`, :mod:`repro.analysis.ilp_static`) needs to
know about one ISA:

* the **control protocol** — how to decode an instruction's successor
  indices, which instructions are calls / returns / block terminators
  (STRAIGHT: ``JAL``/``JR``/``HALT``; RV32IM: ``jal``/``jalr`` split by
  ``rd``/``rs1`` register conventions, ``ecall`` exit sequences); and
* the **dataflow protocol** — per-block dependence graphs
  (:class:`BlockDeps`) in the ISA's own operand model (distance slots for
  STRAIGHT, logical registers for the gpr ISAs) plus per-class latencies.

Adding an ISA to every analysis in the repo therefore means implementing
this one class and wiring it into the descriptor.
"""

from repro.uarch.ilp import DEFAULT_LATENCIES


class BlockDeps:
    """Intra-block dependence graph of one basic block (or simple cycle).

    ``indices`` is the instruction sequence; ``producers[pos]`` is a tuple
    of one *ref* per operand of ``indices[pos]``:

    * ``("intra", j)`` — produced by instruction index ``j`` earlier in the
      sequence,
    * ``("in", key)`` — live-in: produced before the sequence under ``key``
      (a register number for gpr ISAs, a 1-based age depth for STRAIGHT),
    * ``None`` — no dataflow edge (zero register, constant, or a value made
      opaque by an intervening call).

    ``out_defs`` maps each live-out ``key`` to the index that produces it
    at sequence exit — resolving a back edge's ``("in", key)`` reads to the
    previous iteration's producers.
    """

    __slots__ = ("indices", "producers", "out_defs")

    def __init__(self, indices, producers, out_defs):
        self.indices = list(indices)
        self.producers = list(producers)
        self.out_defs = dict(out_defs)


class IsaAnalysisSupport:
    """Abstract per-ISA plug for the dataflow framework."""

    #: registry name of the ISA this support object describes
    name = ""
    #: ``"distance"`` (STRAIGHT age operands) or ``"gpr"`` (logical registers)
    register_model = "gpr"
    #: op_class -> execution latency used by the static ILP pass; these are
    #: the *minimum* (cache-hit) latencies of the timing model, so static
    #: dependence heights never exceed simulated ones.
    latencies = DEFAULT_LATENCIES

    # -- control protocol --------------------------------------------------

    def successors(self, program, index):
        """``(succs, call_target, issue)`` of instruction ``index``.

        ``succs`` are the intra-procedural successor indices (a call falls
        through to ``index + 1`` — the callee is opaque), ``call_target``
        is the callee's entry index for a direct call (``None`` otherwise),
        and ``issue`` is a ``(code, message)`` diagnostic for malformed
        edges (targets outside the text segment).
        """
        raise NotImplementedError

    def ends_block(self, program, index):
        """True if instruction ``index`` terminates a basic block."""
        raise NotImplementedError

    def is_call(self, program, index):
        """True for call instructions (direct or indirect)."""
        raise NotImplementedError

    def is_return(self, program, index):
        """True for return instructions."""
        raise NotImplementedError

    # -- dataflow protocol -------------------------------------------------

    def latency(self, program, index):
        return self.latencies.get(program.instrs[index].op_class, 1)

    def block_deps(self, program, indices):
        """The :class:`BlockDeps` of the instruction sequence ``indices``."""
        raise NotImplementedError
