"""Threaded-code functional fast path: basic blocks compiled to closures.

The pre-decoded interpreters (:mod:`repro.straight.interpreter`,
:mod:`repro.riscv.interpreter`) still pay one Python dispatch per dynamic
instruction: an attribute-heavy ``step_op`` call, a big ``if/elif`` chain
over the kind int, a ``partial(eval_binop, ...)`` call per ALU op and two
dict updates per retired instruction.  This package removes all of it by
compiling each basic block of the pre-decoded ``DecodedOp`` array into one
specialized Python function (classic threaded-code / superinstruction
technique, done with textual codegen + ``exec``):

* operand accessors are pre-bound: register indices, wrapped immediates and
  branch targets are baked in as literals;
* ALU/compare semantics are inlined as native integer expressions (the
  exact :func:`repro.ir.passes.constfold.eval_binop` algebra, masked to 32
  bits); rare ops (divide/remainder) fall back to the pre-bound evaluators;
* common pairs are fused into superinstructions: a compare feeding the
  block-ending branch becomes one native boolean test, and intra-block
  producers are forwarded through Python locals, so address-generation
  feeding a load never round-trips the register file;
* per-instruction bookkeeping (``mnemonic_counts``, ``distance_hist``) is
  batched into precomputed per-block bumps, applied in the same
  first-occurrence order the baseline produces, so the final statistics
  dicts are identical — iteration order included.

Two function sets are generated per program and memoized on the program
object (one compile per linked binary, like pre-decode itself):

* **block functions** — trace-less whole-block execution, used by
  ``run(collect_trace=False)`` and the sampled-simulation fast-forward;
* **per-op handlers** — single-instruction execution with full
  ``TraceEntry`` support, used for trace collection, for ``step()`` (so the
  lockstep golden machine exercises the same generated code it guards) and
  for landing exactly on ``max_steps``/window boundaries or on a computed
  jump target inside a block.

Architectural state is bit-identical to the baseline interpreter loop on
every run that completes without a :class:`SimulationError`.  On error
paths the same exception (type and message) is raised, but the per-block
bookkeeping batching means partially-executed blocks leave statistics
dicts behind the baseline's — acceptable because erroring programs are
compiler bugs by definition and nothing asserts statistics after a crash.

``STRAIGHT_FASTPATH=0`` in the environment disables the whole subsystem
(every interpreter falls back to the baseline ``step_op`` loop), and each
interpreter accepts ``compiled=True/False/None`` to override per instance.
"""

import os

from repro.common.errors import SimulationError

__all__ = [
    "enabled",
    "compiled_for",
    "run_compiled",
    "run_compiled_warming",
    "CompiledProgram",
]


def enabled(default=True):
    """Whether the compiled fast path is globally enabled.

    ``STRAIGHT_FASTPATH=0`` (or ``off``/``false``) disables it — the
    escape hatch for benchmarking the baseline and for debugging.
    """
    value = os.environ.get("STRAIGHT_FASTPATH")
    if value is None:
        return default
    return value.strip().lower() not in ("0", "off", "false", "no")


def compiled_for(program, isa):
    """The memoized :class:`CompiledProgram` of ``program``.

    ``isa`` is the registered ISA name; ``straight`` programs compile via
    :mod:`repro.fastpath.straight_gen`, gpr programs (``riscv``, ``bb``)
    via :mod:`repro.fastpath.riscv_gen`.  Like the pre-decode array, the
    compiled unit is static (it holds no run state), so every interpreter
    over the same linked binary shares one compile.
    """
    cached = getattr(program, "_fastpath_compiled", None)
    if cached is not None and cached.n == len(program.instrs):
        return cached
    if isa == "straight":
        from repro.fastpath.straight_gen import compile_program
    else:
        from repro.fastpath.riscv_gen import compile_program
    compiled = compile_program(program)
    program._fastpath_compiled = compiled
    return compiled


def run_compiled(it, max_steps):
    """Drive interpreter ``it`` through its compiled program.

    Trace-less runs execute whole blocks; trace-collecting runs and the
    final instructions before ``max_steps`` go through the per-op handlers
    so the step count is exact.  A computed jump landing mid-block (``JR``/
    ``JALR`` to a non-leader) single-steps until the next block boundary.
    Returns the number of instructions executed.
    """
    fast = it._fast
    blocks = fast.block_funcs
    lens = fast.block_lens
    handlers = fast.op_handlers
    n = fast.n
    steps = 0
    if it.collect_trace:
        while not it.halted and steps < max_steps:
            index = it.pc_index
            if not 0 <= index < n:
                raise SimulationError(
                    f"pc out of text segment: {it._pc():#x}"
                )
            handlers[index](it)
            steps += 1
        return steps
    while not it.halted and steps < max_steps:
        index = it.pc_index
        if not 0 <= index < n:
            raise SimulationError(f"pc out of text segment: {it._pc():#x}")
        fn = blocks[index]
        if fn is not None and steps + lens[index] <= max_steps:
            fn(it)
            steps += lens[index]
        else:
            handlers[index](it)
            steps += 1
    return steps


def run_compiled_warming(it, max_steps, note):
    """Trace-less compiled run that reports every control transfer.

    The sampled-simulation fast-forward path: identical to the trace-less
    loop of :func:`run_compiled`, plus one ``note(term, next_index)`` call
    per executed branch/jump, where ``term`` is the
    :data:`CompiledProgram.term_at` descriptor.  The sampling runner feeds
    these into the branch predictor, BTB and RAS (functional warming) so
    their state entering each measurement window matches a continuous
    detailed run.  Returns the number of instructions executed.
    """
    fast = it._fast
    blocks = fast.block_funcs
    lens = fast.block_lens
    handlers = fast.op_handlers
    term_at = fast.term_at
    n = fast.n
    steps = 0
    while not it.halted and steps < max_steps:
        index = it.pc_index
        if not 0 <= index < n:
            raise SimulationError(f"pc out of text segment: {it._pc():#x}")
        fn = blocks[index]
        if fn is not None and steps + lens[index] <= max_steps:
            fn(it)
            steps += lens[index]
            term = term_at[index + lens[index] - 1]
        else:
            handlers[index](it)
            steps += 1
            term = term_at[index]
        if term is not None:
            note(term, it.pc_index)
    return steps


from repro.fastpath.codegen import CompiledProgram  # noqa: E402  (re-export)
