"""Basic-block partition of a pre-decoded instruction array.

Leaders are the program entry (index 0), every static branch/jump target,
and the instruction after any terminator (conditional branches, jumps,
calls, returns/indirect jumps, halting instructions) — i.e. the classic
basic-block definition over the ``DecodedOp`` array.  Computed-jump
targets (``JR``/``JALR``) are not statically known; the dispatch driver
falls back to per-op handlers when one lands inside a block, so the
partition only has to be *sound* (no terminator mid-block), not complete.
"""


def block_starts(decoded, terminator_kinds):
    """Sorted leader indices of ``decoded``.

    ``terminator_kinds`` is the ISA's set of dispatch kinds that end a
    block (anything that can leave the fall-through path or halt).
    """
    n = len(decoded)
    leaders = {0} if n else set()
    for op in decoded:
        if op.kind in terminator_kinds:
            if op.index + 1 < n:
                leaders.add(op.index + 1)
            target = op.target_index
            if target is not None and 0 <= target < n:
                leaders.add(target)
    return sorted(leaders)


def partition(decoded, terminator_kinds):
    """``[(start, end), ...]`` half-open block ranges covering ``decoded``.

    Every block is straight-line and only its last instruction may be a
    terminator: a terminator at index ``t`` makes ``t + 1`` a leader, so
    consecutive leader ranges satisfy the invariant by construction.
    """
    n = len(decoded)
    if n == 0:
        return []
    starts = block_starts(decoded, terminator_kinds)
    bounds = starts + [n]
    return [(start, bounds[i + 1]) for i, start in enumerate(starts)]
