"""RV32IM/bb block compiler: DecodedOp arrays -> specialized closures.

The gpr-side counterpart of :mod:`repro.fastpath.straight_gen`, sharing the
expression templates and dispatch tables of :mod:`repro.fastpath.codegen`.
Named registers make the generated code even simpler than STRAIGHT's: reads
and writes are literal ``regs[k]`` subscripts, ``x0`` reads fold to the
literal ``0`` at compile time, and writes to ``x0`` disappear (matching the
interpreter's elided-write semantics).  Within a block, the last write to
each register is *forwarded* as a Python local, so dependent chains
(address generation feeding a load, a compare feeding the block-ending
branch) never round-trip the register file — the superinstruction effect.

``bb`` binaries compile here too: their block-header markers decode to
``RK_BB`` functional no-ops, which cost one batched mnemonic bump and zero
generated instructions.

Bit-identity contract: identical to the STRAIGHT generator — architectural
state, output channel, trace entries and statistics dicts (insertion order
included) match the baseline ``step_op`` loop on every non-erroring run;
error paths raise the same exceptions with statistics batching as the only
observable difference.
"""

from repro.fastpath.blocks import partition
from repro.fastpath.codegen import (
    MASK,
    CompiledProgram,
    SourceWriter,
    base_namespace,
    binop_expr,
    compile_namespace,
    control_descriptors,
    icmp_cond,
    icmp_expr,
)
from repro.riscv.linker import ECALL_EXIT, ECALL_OUT
from repro.riscv.predecode import (
    _BRANCH_PREDS,
    _I_BINOPS,
    _R_BINOPS,
    RK_ALU,
    RK_ALU_IMM,
    RK_AUIPC,
    RK_BB,
    RK_BRANCH,
    RK_ECALL,
    RK_JAL,
    RK_JALR,
    RK_LOAD,
    RK_LUI,
    RK_STORE,
    decode_program,
)

TERMINATORS = frozenset((RK_BRANCH, RK_JAL, RK_JALR, RK_ECALL))

_MEM_KINDS = frozenset((RK_LOAD, RK_STORE))


def _read(fwd, rs):
    """Register-read expression: ``x0`` folds to 0, recent writes forward."""
    if not rs:
        return 0
    return fwd.get(rs, f"regs[{rs}]")


def _addr_expr(w, fwd, rs1, imm):
    """Emit the effective-address computation into ``_a``."""
    base = _read(fwd, rs1)
    if imm == 0:
        w.line(f"_a = {base}")
    else:
        w.line(f"_a = ({base} + {imm}) & {MASK}")


def _emit_op(w, fwd, op, k, pc):
    """Emit one op's computation; returns (value_expr, bool_name, mem)."""
    kind = op.kind
    m = op.mnemonic
    value = None
    cond_name = None
    mem_addr = None
    if kind == RK_ALU or kind == RK_ALU_IMM:
        if kind == RK_ALU:
            _, rs1, rs2 = op.operand
            a, b = _read(fwd, rs1), _read(fwd, rs2)
        else:
            _, rs1, b = op.operand  # pre-wrapped immediate
            a = _read(fwd, rs1)
        if op.dest is None:
            return None, None, None  # pure compute into x0: nothing observable
        name = _R_BINOPS.get(m) or _I_BINOPS.get(m)
        if name is not None:
            expr = binop_expr(name, a, b)
        elif m in ("SLT", "SLTI"):
            w.line(f"_t{k} = {icmp_cond('slt', a, b)}")
            cond_name = f"_t{k}"
            expr = f"(1 if _t{k} else 0)"
        else:  # SLTU / SLTIU
            expr = icmp_expr("ult", a, b)
        if isinstance(expr, str) and expr == str(a):
            value = a  # identity fold (ADDI rd, rs, 0 and friends)
        else:
            w.line(f"v{k} = {expr}")
            value = f"v{k}"
    elif kind == RK_LUI or kind == RK_AUIPC:
        value = op.operand
    elif kind == RK_LOAD:
        rs1, imm = op.operand
        _addr_expr(w, fwd, rs1, imm)
        w.line("if _a & 3:")
        w.indent()
        w.line(f"_mis('load', _a, {pc})")
        w.dedent()
        mem_addr = "_a"
        if op.dest is not None:
            w.line(f"v{k} = mem.get(_a >> 2, 0)")
            value = f"v{k}"
    elif kind == RK_STORE:
        rs1, rs2, imm = op.operand
        _addr_expr(w, fwd, rs1, imm)
        w.line("if _a & 3:")
        w.indent()
        w.line(f"_mis('store', _a, {pc})")
        w.dedent()
        w.line(f"mem[_a >> 2] = {_read(fwd, rs2)}")
        mem_addr = "_a"
    elif kind == RK_BRANCH:
        _, rs1, rs2 = op.operand
        pred = _BRANCH_PREDS[m]
        w.line(f"_t = {icmp_cond(pred, _read(fwd, rs1), _read(fwd, rs2))}")
        cond_name = "_t"
    elif kind == RK_JAL:
        value = op.operand[0] if op.dest is not None else None
    elif kind == RK_JALR:
        rs1, imm, link = op.operand[0], op.operand[1], op.operand[2]
        base = _read(fwd, rs1)
        if imm == 0:
            w.line(f"_tp = {base} & 4294967294")
        else:
            w.line(f"_tp = ({base} + {imm}) & 4294967294")
        w.line("_ni = _iop(_tp)")
        value = link if op.dest is not None else None
    elif kind == RK_ECALL:
        w.line(f"_svc = {_read(fwd, 17)}")
        w.line(f"if _svc == {ECALL_OUT}:")
        w.indent()
        w.line(f"it.output.append({_read(fwd, 10)})")
        w.dedent()
        w.line(f"elif _svc == {ECALL_EXIT}:")
        w.indent()
        w.line("it.halted = True")
        w.line(f"it.exit_code = {_read(fwd, 10)}")
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"_badcall(_svc, {pc})")
        w.dedent()
    elif kind == RK_BB:
        pass  # block header: decode-stage marker, no architectural effect
    else:  # pragma: no cover - closed opcode table
        raise ValueError(f"unimplemented kind {kind} ({m})")
    return value, cond_name, mem_addr


def _write_dest(w, fwd, op, value):
    """Emit the architectural write and update the forwarding map.

    Only *stable* value expressions (int literals and single-assignment
    locals) enter the forwarding map.  An identity-folded ``regs[k]``
    expression must not forward: the source register may be overwritten
    later in the block, which would alias the forwarded read.
    """
    if op.dest is None or value is None:
        return
    w.line(f"regs[{op.dest}] = {value}")
    if isinstance(value, int) or not value.startswith("regs["):
        fwd[op.dest] = value
    else:
        fwd.pop(op.dest, None)


def _block_prologue(w, ops, name):
    w.line(f"def {name}(it):")
    w.indent()
    w.line("regs = it.regs")
    if any(op.kind in _MEM_KINDS for op in ops):
        w.line("mem = it.memory")


def _emit_block(w, decoded, start, end):
    ops = decoded[start:end]
    _block_prologue(w, ops, f"_b{start}")
    fwd = {}
    counts = {}
    last_cond = None
    for k, op in enumerate(ops):
        value, cond_name, _ = _emit_op(w, fwd, op, k, op.pc)
        _write_dest(w, fwd, op, value)
        counts[op.mnemonic] = counts.get(op.mnemonic, 0) + 1
        last_cond = cond_name
    if counts:
        w.line("_mc = it.mnemonic_counts")
        for mnemonic, count in counts.items():
            w.line(f"_mc[{mnemonic!r}] = _mc.get({mnemonic!r}, 0) + {count}")
    last = ops[-1]
    if last.kind == RK_BRANCH:
        w.line(f"if {last_cond}:")
        w.indent()
        w.line(f"it.pc_index = {last.target_index}")
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"it.pc_index = {end}")
        w.dedent()
    elif last.kind == RK_JAL:
        w.line(f"it.pc_index = {last.target_index}")
    elif last.kind == RK_JALR:
        w.line("it.pc_index = _ni")
    else:  # ECALL or plain fall-through
        w.line(f"it.pc_index = {end}")
    w.dedent()
    w.line()


def _emit_handler(w, op):
    i = op.index
    pc = op.pc
    kind = op.kind
    _block_prologue(w, (op,), f"_h{i}")
    fwd = {}  # handlers never forward: they read the live register file
    value, cond_name, mem_addr = _emit_op(w, fwd, op, 0, pc)
    taken = "False"
    target_pc = "None"
    next_index = str(i + 1)
    next_pc = str(pc + 4)
    is_call = "False"
    is_return = "False"
    if kind == RK_BRANCH:
        taken = cond_name
        target_pc = str(op.target_pc)
        next_index = f"({op.target_index} if {cond_name} else {i + 1})"
        next_pc = f"({op.target_pc} if {cond_name} else {pc + 4})"
    elif kind == RK_JAL:
        taken = "True"
        target_pc = str(op.target_pc)
        next_index = str(op.target_index)
        next_pc = str(op.target_pc)
        is_call = str(bool(op.operand[1]))
    elif kind == RK_JALR:
        taken = "True"
        target_pc = "_tp"
        next_index = "_ni"
        next_pc = "(_tb + _ni * 4)"
        is_call = str(bool(op.operand[3]))
        is_return = str(bool(op.operand[4]))
    _write_dest(w, {}, op, value)
    mnemonic = op.mnemonic
    w.line("_mc = it.mnemonic_counts")
    w.line(f"_mc[{mnemonic!r}] = _mc.get({mnemonic!r}, 0) + 1")
    if op.dest is not None:
        dest_value = value if value is not None else f"regs[{op.dest}]"
    elif kind == RK_STORE:
        dest_value = _read({}, op.operand[1])  # the stored (wrapped) word
    else:
        dest_value = "None"
    w.line("if it.collect_trace:")
    w.indent()
    w.line("it.trace.append(_TE(")
    w.indent()
    w.line(f"pc={pc}, op_class={op.op_class!r}, mnemonic={mnemonic!r},")
    w.line(f"dest={op.dest}, srcs={tuple(op.srcs)!r}, taken={taken},")
    w.line(f"target_pc={target_pc}, next_pc={next_pc},")
    w.line(f"mem_addr={mem_addr or 'None'},")
    w.line(f"is_call={is_call}, is_return={is_return},")
    w.line(f"dest_value={dest_value}))")
    w.dedent()
    w.dedent()
    w.line(f"it.pc_index = {next_index}")
    w.dedent()
    w.line()


def compile_program(program):
    """Compile ``program`` into a :class:`CompiledProgram` (one exec)."""
    decoded = decode_program(program)
    n = len(decoded)
    ranges = partition(decoded, TERMINATORS)
    w = SourceWriter()
    for start, end in ranges:
        _emit_block(w, decoded, start, end)
    for op in decoded:
        _emit_handler(w, op)
    namespace = base_namespace(program)
    compile_namespace(w.text(), namespace, f"riscv:{program.text_base:#x}")
    block_funcs = [None] * n
    block_lens = [0] * n
    for start, end in ranges:
        block_funcs[start] = namespace[f"_b{start}"]
        block_lens[start] = end - start
    handlers = [namespace[f"_h{op.index}"] for op in decoded]
    term_at = control_descriptors(decoded, _call_return)
    return CompiledProgram(
        n, block_funcs, block_lens, handlers,
        min_mrp=0, block_ranges=tuple(ranges), term_at=term_at,
    )


def _call_return(op):
    """The (is_call, is_return) flags a control op's trace entries carry."""
    if op.kind == RK_JAL:
        return op.operand[1], False
    if op.kind == RK_JALR:
        return op.operand[3], op.operand[4]
    return False, False
