"""Shared codegen machinery for the threaded-code fast path.

Both ISA generators (:mod:`repro.fastpath.straight_gen`,
:mod:`repro.fastpath.riscv_gen`) emit one Python module's worth of source
text per linked binary — a block function per basic block plus a per-op
handler per instruction — and ``exec`` it once against a small namespace
of pre-bound helpers.  This module owns the pieces that are identical on
both sides:

* :class:`SourceWriter` — indentation-tracking line buffer;
* :class:`CompiledProgram` — the compiled artifact the dispatch driver
  consumes (dense block/handler tables);
* the inline 32-bit ALU/compare expression templates, textually mirroring
  :func:`repro.ir.passes.constfold.eval_binop` / ``eval_icmp`` exactly —
  divide/remainder keep their subtle corner semantics (including the
  baseline's ``int(sa / sb)`` truncation) by calling the pre-bound
  evaluators instead of being inlined;
* the runtime error helpers raising the baseline's exact
  :class:`~repro.common.errors.SimulationError` diagnostics.
"""

from functools import partial

from repro.common.errors import SimulationError
from repro.common.trace import TraceEntry
from repro.ir.passes.constfold import eval_binop

MASK = "4294967295"   # 0xFFFF_FFFF
SIGN = 2147483648     # 0x8000_0000


class CompiledProgram:
    """The compiled fast path of one linked binary (static, shareable)."""

    __slots__ = ("n", "block_funcs", "block_lens", "op_handlers", "min_mrp",
                 "block_ranges", "term_at")

    def __init__(self, n, block_funcs, block_lens, op_handlers, min_mrp=0,
                 block_ranges=(), term_at=()):
        self.n = n
        #: Dense tables indexed by instruction index: a block function (and
        #: its length) at each leader, None/0 elsewhere.
        self.block_funcs = block_funcs
        self.block_lens = block_lens
        #: One single-instruction handler per index (trace-capable).
        self.op_handlers = op_handlers
        #: Smallest ``max_rp`` the intra-block forwarding is valid for
        #: (STRAIGHT only): a forwarded distance ``d`` reads the producer's
        #: local, which matches the register file only while no later
        #: instruction in the window aliased the register — guaranteed for
        #: ``max_rp >= d``.  Interpreters with a smaller circular file fall
        #: back to the baseline loop.
        self.min_mrp = min_mrp
        self.block_ranges = block_ranges
        #: Control-flow descriptors indexed by instruction index —
        #: ``(pc, is_conditional, is_call, is_return, fallthrough_index)``
        #: at every branch/jump, None elsewhere.  Sampled simulation uses
        #: them for functional warming: replaying each fast-forwarded
        #: control transfer into the branch predictor / BTB / RAS so their
        #: state matches a continuous detailed run (SMARTS's key accuracy
        #: requirement).
        self.term_at = term_at


def control_descriptors(decoded, is_call_return):
    """The ``term_at`` table for a decoded program.

    ``is_call_return(op)`` is the ISA's classifier returning the
    ``(is_call, is_return)`` pair for one control op.  Conditionality comes
    from ``op_class`` — exactly the distinction the fetch stage's
    ``_predict_control`` draws between predictor-consulting branches and
    always-taken jumps.
    """
    term_at = [None] * len(decoded)
    for op in decoded:
        if op.op_class == "branch" or op.op_class == "jump":
            is_call, is_return = is_call_return(op)
            term_at[op.index] = (
                op.pc, op.op_class == "branch", is_call, is_return,
                op.index + 1,
            )
    return term_at


class SourceWriter:
    """Tiny indented source-text builder."""

    def __init__(self):
        self._lines = []
        self._indent = 0

    def line(self, text=""):
        self._lines.append("    " * self._indent + text if text else "")

    def indent(self):
        self._indent += 1

    def dedent(self):
        self._indent -= 1

    def text(self):
        return "\n".join(self._lines) + "\n"


# -- runtime error helpers (bound into every generated namespace) --------------


def raise_neg_distance(it, distance, pc):
    raise SimulationError(
        f"pc={pc:#x}: distance {distance} reaches before program start"
    )


def raise_stale(it, distance, producer, reg, pc):
    raise SimulationError(
        f"pc={pc:#x}: distance {distance} names instruction "
        f"#{producer} but register {reg} holds the value of "
        f"#{it.written_seq[reg]} (stale/aliased operand)"
    )


def raise_misaligned(what, addr, pc):
    raise SimulationError(f"pc={pc:#x}: misaligned {what} {addr:#x}")


def raise_unknown_ecall(service, pc):
    raise SimulationError(f"pc={pc:#x}: unknown ecall {service}")


def base_namespace(program):
    """The helper bindings shared by both ISA generators."""
    return {
        "_TE": TraceEntry,
        "_iop": program.index_of_pc,
        "_tb": program.text_base,
        "_neg": raise_neg_distance,
        "_stale": raise_stale,
        "_mis": raise_misaligned,
        "_badcall": raise_unknown_ecall,
        "_sdiv": partial(eval_binop, "sdiv"),
        "_udiv": partial(eval_binop, "udiv"),
        "_srem": partial(eval_binop, "srem"),
        "_urem": partial(eval_binop, "urem"),
    }


def compile_namespace(source, namespace, tag):
    """``exec`` one generated module; returns the populated namespace."""
    code = compile(source, f"<fastpath:{tag}>", "exec")
    exec(code, namespace)  # noqa: S102 - our own generated source
    return namespace


# -- inline expression templates ------------------------------------------------

#: Binops whose semantics inline to simple masked integer expressions.
#: Divide/remainder are excluded on purpose: their corner cases (divide by
#: zero, INT_MIN overflow, float-mediated truncation) must match
#: ``eval_binop`` bit-for-bit, so they call the pre-bound evaluator.
_DIV_HELPERS = {"sdiv": "_sdiv", "udiv": "_udiv", "srem": "_srem",
                "urem": "_urem"}


def _signed(expr):
    """Two's-complement reinterpretation of a wrapped word expression."""
    return f"({expr} - (({expr} >> 31) << 32))"


def binop_expr(name, a, b):
    """Python expression computing ``eval_binop(name, a, b)``.

    ``a`` and ``b`` must be *simple* expressions (a local name or an int
    literal) — templates may repeat them.  Integer ``b`` enables constant
    folding of shift counts and additive identities.  All inputs are
    assumed wrapped to 32 bits (the interpreters' standing invariant);
    every emitted expression yields a wrapped word.
    """
    b_int = b if isinstance(b, int) else None
    a = str(a)
    b = str(b)
    if name == "add":
        return a if b_int == 0 else f"({a} + {b}) & {MASK}"
    if name == "sub":
        return a if b_int == 0 else f"({a} - {b}) & {MASK}"
    if name == "mul":
        return f"({a} * {b}) & {MASK}"
    if name == "and":
        return f"{a} & {b}"
    if name == "or":
        return a if b_int == 0 else f"{a} | {b}"
    if name == "xor":
        return a if b_int == 0 else f"{a} ^ {b}"
    if name == "shl":
        if b_int is not None:
            k = b_int & 31
            return a if k == 0 else f"({a} << {k}) & {MASK}"
        return f"({a} << ({b} & 31)) & {MASK}"
    if name == "lshr":
        if b_int is not None:
            k = b_int & 31
            return a if k == 0 else f"{a} >> {k}"
        return f"{a} >> ({b} & 31)"
    if name == "ashr":
        if b_int is not None:
            k = b_int & 31
            # wrap32(sa >> 0) == a for a wrapped input.
            if k == 0:
                return a
            return f"({_signed(a)} >> {k}) & {MASK}"
        return f"({_signed(a)} >> ({b} & 31)) & {MASK}"
    helper = _DIV_HELPERS.get(name)
    if helper is not None:
        return f"{helper}({a}, {b})"
    raise ValueError(f"no inline template for binop {name!r}")


def icmp_cond(pred, a, b):
    """Python *boolean* expression for ``eval_icmp(pred, a, b) == 1``."""
    a = str(a)
    sb = None
    if isinstance(b, int):
        sb = b ^ SIGN  # pre-fold the sign-flip for signed compares
    b = str(b)
    if pred == "eq":
        return f"{a} == {b}"
    if pred == "ne":
        return f"{a} != {b}"
    if pred == "ult":
        return f"{a} < {b}"
    if pred == "ule":
        return f"{a} <= {b}"
    if pred == "ugt":
        return f"{a} > {b}"
    if pred == "uge":
        return f"{a} >= {b}"
    signed_ops = {"slt": "<", "sle": "<=", "sgt": ">", "sge": ">="}
    op = signed_ops.get(pred)
    if op is None:
        raise ValueError(f"no inline template for icmp {pred!r}")
    rhs = str(sb) if sb is not None else f"({b} ^ {SIGN})"
    return f"({a} ^ {SIGN}) {op} {rhs}"


def icmp_expr(pred, a, b):
    """Python expression computing ``eval_icmp(pred, a, b)`` (0 or 1)."""
    return f"(1 if {icmp_cond(pred, a, b)} else 0)"
