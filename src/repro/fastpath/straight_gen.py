"""STRAIGHT block compiler: DecodedOp arrays -> specialized Python closures.

Generates, per linked STRAIGHT binary, one module of Python source holding

* ``_b{start}`` — a function per basic block executing the whole block
  trace-less (the ``run(collect_trace=False)`` / fast-forward hot path);
* ``_h{index}`` — a function per instruction executing exactly one op with
  full ``TraceEntry`` support (trace runs, ``step()``, lockstep golden,
  boundary landing).

The generated code preserves the baseline interpreter's semantics exactly:

* source reads resolve ``producer = seq - distance`` with the same
  negative-distance and stale-register diagnostics (distance checking
  stays a run-time flag — the generated code tests one pre-loaded local);
* destination writes hit ``regs[(seq + k) % max_rp]`` with pre-baked
  offsets; every value written is already masked to 32 bits;
* ALU/compare algebra is inlined via :func:`repro.fastpath.codegen.binop_expr`
  (divide/remainder call the pre-bound ``eval_binop`` partials, keeping
  the baseline's corner semantics bit-exact);
* ``mnemonic_counts`` / ``distance_hist`` updates are batched per block in
  first-occurrence order, reproducing the baseline dicts — insertion order
  included — on every non-erroring run.

Superinstruction fusion happens structurally: a producer inside the block
is *forwarded* as a Python local (so RMOV chains and address-generation
feeding a load collapse to local reads), and a compare feeding the
block-ending BEZ/BNZ exports its raw boolean, so the branch tests one
native condition instead of re-comparing an int.  Forwarding a distance
``d`` is only architecturally transparent while ``max_rp >= d`` (no later
op can alias the producer's register inside the window); the largest
forwarded distance is recorded as :attr:`CompiledProgram.min_mrp` and
interpreters with a smaller circular file decline the fast path.
"""

from repro.fastpath.blocks import partition
from repro.fastpath.codegen import (
    MASK,
    CompiledProgram,
    SourceWriter,
    base_namespace,
    binop_expr,
    compile_namespace,
    control_descriptors,
    icmp_cond,
)
from repro.straight.predecode import (
    _ALU_BINOPS,
    _CMP_OPS,
    K_ALU,
    K_ALU_IMM,
    K_BEZ,
    K_BNZ,
    K_CALL,
    K_CMP,
    K_CMP_IMM,
    K_HALT,
    K_JUMP,
    K_LOAD,
    K_LUI,
    K_OUT,
    K_RET,
    K_RMOV,
    K_SPADD,
    K_STORE,
    decode_program,
)

TERMINATORS = frozenset(
    (K_BEZ, K_BNZ, K_JUMP, K_CALL, K_RET, K_HALT)
)

_MEM_KINDS = frozenset((K_LOAD, K_STORE))


class _BlockState:
    """Per-block codegen state: value forwarding and batched bookkeeping."""

    def __init__(self):
        #: offset-in-block -> value expression (a local name or int literal)
        self.values = {}
        #: offset-in-block -> bool-local name, for compare ops only
        self.bools = {}
        self.hist = {}      # distance -> count, first-occurrence order
        self.counts = {}    # mnemonic -> count, first-occurrence order
        self.max_forward = 0


def _read_source(w, state, op, k, slot, distance, checked):
    """Emit one source read; returns its value expression.

    ``k`` is the op's offset in the block (0 for handlers, which pass
    ``checked='handler'`` to get inline histogram updates and producer
    locals for the trace).  Distance histogram updates are batched into
    ``state.hist`` for blocks and emitted inline for handlers.
    """
    if distance == 0:
        return 0
    handler = checked == "handler"
    if not handler:
        state.hist[distance] = state.hist.get(distance, 0) + 1
        back = distance - k
        if back <= 0:
            # Intra-block producer: forward its value through the local.
            state.max_forward = max(state.max_forward, distance)
            return state.values[k - distance]
    pc = op.pc
    name = f"a{k}_{slot}"
    prod = f"_p{slot}" if handler else "_p"
    reg = "_q"
    w.line(f"{prod} = seq - {distance if handler else distance - k}")
    w.line(f"if {prod} < 0:")
    w.indent()
    w.line(f"_neg(it, {distance}, {pc})")
    w.dedent()
    w.line(f"{reg} = {prod} % mrp")
    w.line(f"if chk and ws[{reg}] != {prod}:")
    w.indent()
    w.line(f"_stale(it, {distance}, {prod}, {reg}, {pc})")
    w.dedent()
    if handler:
        w.line(f"_dh[{distance}] = _dh.get({distance}, 0) + 1")
    w.line(f"{name} = regs[{reg}]")
    return name


def _emit_value(w, state, op, k, srcs):
    """Emit the op's computation; returns (value_expr, extra_trace_fields).

    ``value_expr`` is what gets written to the destination register (an
    int literal or an assigned-once local/source name, always a wrapped
    word).  ``extra_trace_fields`` carries the handler-only trace pieces
    (memory address local, etc.).
    """
    kind = op.kind
    pc = op.pc
    mem_addr = None
    if kind == K_ALU:
        name = _ALU_BINOPS[op.mnemonic]
        w.line(f"v{k} = {binop_expr(name, srcs[0], srcs[1])}")
        value = f"v{k}"
    elif kind == K_ALU_IMM:
        name = _ALU_BINOPS[op.mnemonic]
        imm = op.operand[1]
        expr = binop_expr(name, srcs[0], imm)
        if expr == str(srcs[0]):
            value = srcs[0]  # additive/shift identity folded away
        else:
            w.line(f"v{k} = {expr}")
            value = f"v{k}"
    elif kind == K_CMP or kind == K_CMP_IMM:
        pred = _CMP_OPS[op.mnemonic]
        rhs = srcs[1] if kind == K_CMP else op.operand[1]
        w.line(f"_t{k} = {icmp_cond(pred, srcs[0], rhs)}")
        w.line(f"v{k} = 1 if _t{k} else 0")
        state.bools[k] = f"_t{k}"
        value = f"v{k}"
    elif kind == K_LOAD:
        offset = op.operand
        if offset == 0:
            w.line(f"_a = {srcs[0]}")
        else:
            w.line(f"_a = ({srcs[0]} + {offset}) & {MASK}")
        w.line("if _a & 3:")
        w.indent()
        w.line(f"_mis('load', _a, {pc})")
        w.dedent()
        w.line(f"v{k} = mem.get(_a >> 2, 0)")
        value = f"v{k}"
        mem_addr = "_a"
    elif kind == K_STORE:
        offset = op.operand
        if offset == 0:
            w.line(f"_a = {srcs[1]}")
        else:
            w.line(f"_a = ({srcs[1]} + {offset}) & {MASK}")
        w.line("if _a & 3:")
        w.indent()
        w.line(f"_mis('store', _a, {pc})")
        w.dedent()
        w.line(f"mem[_a >> 2] = {srcs[0]}")
        value = srcs[0]  # "store value is returned" (paper §III-A)
        mem_addr = "_a"
    elif kind == K_RMOV:
        value = srcs[0]
    elif kind == K_LUI:
        value = op.operand
    elif kind == K_CALL:
        value = op.operand  # the link value
    elif kind == K_SPADD:
        w.line(f"_sp{k} = (it.sp + {op.operand}) & {MASK}")
        w.line(f"it.sp = _sp{k}")
        value = f"_sp{k}"
    elif kind == K_OUT:
        w.line(f"it.output.append({srcs[0]})")
        value = srcs[0]
    elif kind == K_HALT:
        w.line("it.halted = True")
        value = 0
    else:  # K_BEZ / K_BNZ / K_JUMP / K_RET / K_NOP write zero
        value = 0
    return value, mem_addr


def _emit_dest(w, k, value):
    if k == 0:
        w.line("_q = seq % mrp")
        w.line(f"regs[_q] = {value}")
        w.line("ws[_q] = seq")
    else:
        w.line(f"_q = (seq + {k}) % mrp")
        w.line(f"regs[_q] = {value}")
        w.line(f"ws[_q] = seq + {k}")


def _block_needs(ops, start):
    """(needs_check, needs_mem): which prologue locals the block uses."""
    needs_check = False
    needs_mem = False
    for k, op in enumerate(ops):
        if op.kind in _MEM_KINDS:
            needs_mem = True
        for distance in op.srcs:
            if distance > k:  # at least one out-of-block read
                needs_check = True
    return needs_check, needs_mem


def _branch_condition(state, op, k, src_expr):
    """The native taken-condition of a block-ending BEZ/BNZ.

    When the branch source is a compare executed earlier in the same block
    the raw boolean local is reused (the fused compare+branch
    superinstruction); otherwise the wrapped word is tested against zero.
    """
    distance = op.srcs[0]
    j = k - distance
    if distance and j >= 0 and j in state.bools:
        t = state.bools[j]
        return f"not {t}" if op.kind == K_BEZ else t
    test = "==" if op.kind == K_BEZ else "!="
    return f"{src_expr} {test} 0"


def _emit_block(w, decoded, start, end):
    """Emit one `_b{start}` whole-block function; returns max forward dist."""
    ops = decoded[start:end]
    needs_check, needs_mem = _block_needs(ops, start)
    state = _BlockState()
    w.line(f"def _b{start}(it):")
    w.indent()
    w.line("seq = it.seq")
    w.line("regs = it.regs")
    w.line("ws = it.written_seq")
    w.line("mrp = it.max_rp")
    if needs_check:
        w.line("chk = it.check_distances")
    if needs_mem:
        w.line("mem = it.memory")
    last_cond = None
    last_srcs = []
    for k, op in enumerate(ops):
        srcs = [
            _read_source(w, state, op, k, slot, d, "block")
            for slot, d in enumerate(op.srcs)
        ]
        value, _ = _emit_value(w, state, op, k, srcs)
        state.values[k] = value
        _emit_dest(w, k, value)
        state.counts[op.mnemonic] = state.counts.get(op.mnemonic, 0) + 1
        last_srcs = srcs
        if op.kind in (K_BEZ, K_BNZ):
            last_cond = _branch_condition(state, op, k, srcs[0])
    w.line(f"it.seq = seq + {len(ops)}")
    if state.counts:
        w.line("_mc = it.mnemonic_counts")
        for mnemonic, count in state.counts.items():
            w.line(f"_mc[{mnemonic!r}] = _mc.get({mnemonic!r}, 0) + {count}")
    if state.hist:
        w.line("_dh = it.distance_hist")
        for distance, count in state.hist.items():
            w.line(f"_dh[{distance}] = _dh.get({distance}, 0) + {count}")
    last = ops[-1]
    if last.kind in (K_BEZ, K_BNZ):
        w.line(f"if {last_cond}:")
        w.indent()
        w.line(f"it.pc_index = {last.target_index}")
        w.dedent()
        w.line("else:")
        w.indent()
        w.line(f"it.pc_index = {end}")
        w.dedent()
    elif last.kind in (K_JUMP, K_CALL):
        w.line(f"it.pc_index = {last.target_index}")
    elif last.kind == K_RET:
        w.line(f"it.pc_index = _iop({last_srcs[0]})")
    else:  # HALT or plain fall-through
        w.line(f"it.pc_index = {end}")
    w.dedent()
    w.line()
    return state.max_forward


def _emit_handler(w, op):
    """Emit one `_h{index}` single-op handler (trace-capable)."""
    i = op.index
    pc = op.pc
    kind = op.kind
    state = _BlockState()
    has_reads = any(d for d in op.srcs)
    w.line(f"def _h{i}(it):")
    w.indent()
    w.line("seq = it.seq")
    w.line("regs = it.regs")
    w.line("ws = it.written_seq")
    w.line("mrp = it.max_rp")
    if has_reads:
        w.line("chk = it.check_distances")
        w.line("_dh = it.distance_hist")
    if kind in _MEM_KINDS:
        w.line("mem = it.memory")
    srcs = [
        _read_source(w, state, op, 0, slot, d, "handler")
        for slot, d in enumerate(op.srcs)
    ]
    value, mem_addr = _emit_value(w, state, op, 0, srcs)
    # Control resolution (handlers own their pc update and trace fields).
    taken = "False"
    target_pc = "None"
    next_index = str(i + 1)
    next_pc = str(pc + 4)
    if kind in (K_BEZ, K_BNZ):
        cond = _branch_condition(state, op, 0, srcs[0])
        w.line(f"_t = {cond}")
        taken = "_t"
        target_pc = str(op.target_pc)
        next_index = f"({op.target_index} if _t else {i + 1})"
        next_pc = f"({op.target_pc} if _t else {pc + 4})"
    elif kind in (K_JUMP, K_CALL):
        taken = "True"
        target_pc = str(op.target_pc)
        next_index = str(op.target_index)
        next_pc = str(op.target_pc)
    elif kind == K_RET:
        w.line(f"_ni = _iop({srcs[0]})")
        taken = "True"
        target_pc = str(srcs[0])
        next_index = "_ni"
        next_pc = "(_tb + _ni * 4)"
    _emit_dest(w, 0, value)
    mnemonic = op.mnemonic
    w.line("_mc = it.mnemonic_counts")
    w.line(f"_mc[{mnemonic!r}] = _mc.get({mnemonic!r}, 0) + 1")
    w.line("if it.collect_trace:")
    w.indent()
    producers = []
    for slot, d in enumerate(op.srcs):
        producers.append(f"_p{slot}" if d else "None")
    srcs_list = "[" + ", ".join(producers) + "]"
    w.line("it.trace.append(_TE(")
    w.indent()
    w.line(f"pc={pc}, op_class={op.op_class!r}, mnemonic={mnemonic!r},")
    w.line(f"dest=seq, srcs={srcs_list}, taken={taken},")
    w.line(f"target_pc={target_pc}, next_pc={next_pc},")
    w.line(f"mem_addr={mem_addr or 'None'},")
    w.line(f"is_call={kind == K_CALL}, is_return={kind == K_RET},")
    w.line(f"is_rmov={kind == K_RMOV}, is_spadd={kind == K_SPADD},")
    w.line(f"src_distances={tuple(op.srcs)!r}, dest_value={value}))")
    w.dedent()
    w.dedent()
    w.line("it.seq = seq + 1")
    w.line(f"it.pc_index = {next_index}")
    w.dedent()
    w.line()


def compile_program(program):
    """Compile ``program`` into a :class:`CompiledProgram` (one exec)."""
    decoded = decode_program(program)
    n = len(decoded)
    ranges = partition(decoded, TERMINATORS)
    w = SourceWriter()
    min_mrp = 0
    for start, end in ranges:
        min_mrp = max(min_mrp, _emit_block(w, decoded, start, end))
    for op in decoded:
        _emit_handler(w, op)
    namespace = base_namespace(program)
    compile_namespace(w.text(), namespace, f"straight:{program.text_base:#x}")
    block_funcs = [None] * n
    block_lens = [0] * n
    for start, end in ranges:
        block_funcs[start] = namespace[f"_b{start}"]
        block_lens[start] = end - start
    handlers = [namespace[f"_h{op.index}"] for op in decoded]
    term_at = control_descriptors(
        decoded, lambda op: (op.kind == K_CALL, op.kind == K_RET)
    )
    return CompiledProgram(
        n, block_funcs, block_lens, handlers,
        min_mrp=min_mrp, block_ranges=tuple(ranges), term_at=term_at,
    )
