"""repro — a full-stack reproduction of STRAIGHT (MICRO 2018).

Start with :mod:`repro.core`::

    from repro.core import build, simulate, ss_4way, straight_4way

    binaries = build(mini_c_source)
    result = simulate(binaries.straight_re, straight_4way(), warm_caches=True)

See README.md for the architecture map, DESIGN.md for the system inventory,
and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"
