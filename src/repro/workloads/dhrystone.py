"""Dhrystone-like workload in mini-C.

Mirrors Dhrystone 2.1's structure: a "record" type (modeled as a 6-word
block in an arena), 30-character strings (modeled as 30-word arrays),
the Proc1..Proc8 / Func1..Func3 call web, and the same per-iteration
statement mix (record copies, string compares, enum switching, integer
identities).  The final state is streamed to the output channel so the
RV32IM and STRAIGHT binaries can be checked word-for-word.

Record layout (word offsets):  0 PTR_COMP, 1 DISCR, 2 ENUM_COMP,
3 INT_COMP, 4..9 STRING_COMP (first 6 words of a 30-word string id).
"""

#: Number of output words the workload emits.
EXPECTED_OUTPUT_LEN = 10

_TEMPLATE = """
// ------------------------------------------------------------------
// Dhrystone-like benchmark (mini-C). Records are 16-word blocks in an
// arena; strings are 30-word arrays of character codes.
// ------------------------------------------------------------------

int arena[64];          // two records + slack
int str_1_loc[30];
int str_2_loc[30];

int int_glob;
int bool_glob;
int ch_1_glob;
int ch_2_glob;
int arr_1_glob[50];
int arr_2_glob[200];    // flattened 50 x 4 region is enough traffic
int ptr_glob;           // arena index of record 1
int next_ptr_glob;      // arena index of record 2

int func_1(int ch_1, int ch_2) {
    int ch_1_loc = ch_1;
    int ch_2_loc = ch_1_loc;
    if (ch_2_loc != ch_2) {
        return 0;  // ident_1
    }
    ch_1_glob = ch_1_loc;
    return 1;      // ident_2
}

int str_cmp(int* s1, int* s2) {
    int i = 0;
    while (i < 30) {
        if (s1[i] != s2[i]) {
            return s1[i] - s2[i];
        }
        i = i + 1;
    }
    return 0;
}

int func_2(int* str_1_par, int* str_2_par) {
    int int_loc = 2;
    int ch_loc = 0;
    while (int_loc <= 2) {
        if (func_1(str_1_par[int_loc], str_2_par[int_loc + 1]) == 0) {
            ch_loc = 65;         // 'A'
            int_loc = int_loc + 1;
        } else {
            int_loc = int_loc + 3;
        }
    }
    if (ch_loc >= 87 && ch_loc < 90) {
        int_loc = 7;
    }
    if (ch_loc == 82) {
        return 1;
    }
    if (str_cmp(str_1_par, str_2_par) > 0) {
        int_loc = int_loc + 7;
        int_glob = int_loc;
        return 1;
    }
    return 0;
}

int func_3(int enum_par) {
    int enum_loc = enum_par;
    if (enum_loc == 2) {     // ident_3
        return 1;
    }
    return 0;
}

void proc_6(int enum_par, int* enum_ref) {
    *enum_ref = enum_par;
    if (func_3(enum_par) == 0) {
        *enum_ref = 3;       // ident_4
    }
    if (enum_par == 0) {
        *enum_ref = 0;
    } else if (enum_par == 1) {
        if (int_glob > 100) { *enum_ref = 0; }
        else { *enum_ref = 3; }
    } else if (enum_par == 2) {
        *enum_ref = 1;
    } else if (enum_par == 4) {
        *enum_ref = 2;
    }
}

void proc_7(int int_1_par, int int_2_par, int* int_ref) {
    int int_loc = int_1_par + 2;
    *int_ref = int_2_par + int_loc;
}

void proc_8(int* arr_1_par, int* arr_2_par, int int_1_par, int int_2_par) {
    int int_loc = int_1_par + 5;
    arr_1_par[int_loc] = int_2_par;
    arr_1_par[int_loc + 1] = arr_1_par[int_loc];
    arr_1_par[int_loc + 30] = int_loc;
    int int_index = int_loc;
    while (int_index <= int_loc + 1) {
        arr_2_par[int_loc * 4 + int_index - int_loc] = int_loc;
        int_index = int_index + 1;
    }
    arr_2_par[int_loc * 4 + 1] = arr_2_par[int_loc * 4 + 1] + 1;
    arr_2_par[(int_loc + 24) % 50 * 4 + 3] = arr_1_par[int_loc];
    int_glob = 5;
}

void proc_3(int* ptr_ref) {
    if (ptr_glob != 0 - 1) {            // Ptr_Glob != Null
        *ptr_ref = arena[ptr_glob + 0];  // Ptr_Ref = Ptr_Glob->Ptr_Comp
    }
    proc_7(10, int_glob, &arena[ptr_glob + 3]);
}

void proc_1(int ptr_val_par) {
    int next_record = arena[ptr_val_par + 0];
    // *Ptr_Val_Par->Ptr_Comp = *Ptr_Glob (structure copy, 10 words)
    int i = 0;
    while (i < 10) {
        arena[next_record + i] = arena[ptr_glob + i];
        i = i + 1;
    }
    arena[ptr_val_par + 3] = 5;
    arena[next_record + 3] = arena[ptr_val_par + 3];
    arena[next_record + 0] = arena[ptr_val_par + 0];
    proc_3(&arena[next_record + 0]);
    if (arena[next_record + 1] == 0) {    // Discr == ident_1
        arena[next_record + 3] = 6;
        proc_6(arena[ptr_val_par + 2], &arena[next_record + 2]);
        arena[next_record + 0] = arena[ptr_glob + 0];
        proc_7(arena[next_record + 3], 10, &arena[next_record + 3]);
    } else {
        i = 0;
        while (i < 10) {
            arena[ptr_val_par + i] = arena[next_record + i];
            i = i + 1;
        }
    }
}

void proc_2(int* int_par_ref) {
    int int_loc = *int_par_ref + 10;
    int enum_loc = 0;
    int done = 0;
    while (done == 0) {
        if (ch_1_glob == 65) {           // 'A'
            int_loc = int_loc - 1;
            *int_par_ref = int_loc - int_glob;
            enum_loc = 1;
        }
        if (enum_loc == 1) {
            done = 1;
        }
    }
}

void proc_4() {
    int bool_loc = ch_1_glob == 65;
    bool_loc = bool_loc | bool_glob;
    ch_2_glob = 66;                      // 'B'
}

void proc_5() {
    ch_1_glob = 65;                      // 'A'
    bool_glob = 0;
}

void init_strings() {
    int i = 0;
    while (i < 30) {
        str_1_loc[i] = 32 + (i % 26);    // pseudo characters
        str_2_loc[i] = 32 + (i % 26);
        i = i + 1;
    }
    // "DHRYSTONE PROGRAM, 2'ND STRING" vs 3'RD: differ late
    str_2_loc[20] = 51;
}

int main() {
    // Init: Next_Ptr_Glob = record 2 at arena[16], Ptr_Glob = record 1 at 0
    next_ptr_glob = 16;
    ptr_glob = 0;
    arena[ptr_glob + 0] = next_ptr_glob;
    arena[ptr_glob + 1] = 0;             // ident_1
    arena[ptr_glob + 2] = 2;             // ident_3
    arena[ptr_glob + 3] = 40;
    int i = 0;
    while (i < 6) {
        arena[ptr_glob + 4 + i] = 68 + i;  // string id
        i = i + 1;
    }
    init_strings();
    arr_1_glob[8] = 7;
    arr_2_glob[8 * 4 + 3] = 10;

    int run_index;
    int number_of_runs = @ITERATIONS@;
    int int_1_loc;
    int int_2_loc;
    int int_3_loc = 0;
    int ch_index;
    int enum_loc;
    int bool_checksum = 0;

    for (run_index = 1; run_index <= number_of_runs; run_index = run_index + 1) {
        proc_5();
        proc_4();
        int_1_loc = 2;
        int_2_loc = 3;
        enum_loc = 1;                    // ident_2
        bool_glob = func_2(str_1_loc, str_2_loc) == 0;
        bool_checksum = bool_checksum + bool_glob;
        while (int_1_loc < int_2_loc) {
            int_3_loc = 5 * int_1_loc - int_2_loc;
            proc_7(int_1_loc, int_2_loc, &int_3_loc);
            int_1_loc = int_1_loc + 1;
        }
        proc_8(arr_1_glob, arr_2_glob, int_1_loc, int_3_loc);
        proc_1(ptr_glob);
        for (ch_index = 69; ch_index <= ch_2_glob; ch_index = ch_index + 1) {
            if (enum_loc == func_1(ch_index, 67)) {
                proc_6(0, &enum_loc);
                int_2_loc = run_index;
                int_glob = run_index;
            }
        }
        int_2_loc = int_2_loc * int_1_loc;
        int_1_loc = int_2_loc / int_3_loc;
        int_2_loc = 7 * (int_2_loc - int_3_loc) - int_1_loc;
        proc_2(&int_1_loc);
    }

    __out(int_glob);
    __out(bool_glob);
    __out(ch_1_glob);
    __out(ch_2_glob);
    __out(arr_1_glob[8]);
    __out(arr_2_glob[8 * 4 + 3]);
    __out(int_1_loc);
    __out(int_2_loc);
    __out(int_3_loc);
    __out(bool_checksum);
    return 0;
}
"""


def source(iterations=50):
    """Mini-C source text for ``iterations`` Dhrystone-like runs."""
    return _TEMPLATE.replace("@ITERATIONS@", str(iterations))
