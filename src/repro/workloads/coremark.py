"""CoreMark-like workload in mini-C.

The three CoreMark kernels, re-expressed over word arenas:

* **list processing** — a singly linked list in an integer arena
  (node = [next_index, data]); find, reverse, and an insertion sort keyed
  on data values (pointer chasing, data-dependent branches);
* **matrix operations** — N x N integer matrix multiply-accumulate plus
  bit-twiddled extraction, as in ``core_matrix.c``;
* **state machine** — a character-stream scanner switching among numeric /
  hex / flag states, as in ``core_state.c``;

with every kernel folded into a running CRC-32 checksum (``uint`` shifts),
CoreMark's validation strategy.  Many values stay live across the kernel
loops — the property that makes CoreMark RMOV-heavy on STRAIGHT (§VI-A).
"""

#: Number of output words the workload emits.
EXPECTED_OUTPUT_LEN = 6

_TEMPLATE = """
// ------------------------------------------------------------------
// CoreMark-like benchmark (mini-C).
// ------------------------------------------------------------------

int list_arena[128];     // 64 nodes x [next, data]; index -1 == null
int matrix_a[64];        // 8x8
int matrix_b[64];
int matrix_c[64];
int input_stream[64];    // synthetic character stream
int state_counts[8];

uint crc_accum;

uint crc32_step(uint crc, uint value) {
    uint cur = crc ^ value;
    int bit = 0;
    while (bit < 8) {
        if (cur & 1) {
            cur = (cur >> 1) ^ 0xEDB88320;
        } else {
            cur = cur >> 1;
        }
        bit = bit + 1;
    }
    return cur;
}

void crc_add(int value) {
    crc_accum = crc32_step(crc_accum, value);
}

// ---------------------------- list kernel ----------------------------

int lcg_state;

int lcg_next() {
    lcg_state = lcg_state * 1103515245 + 12345;
    return (lcg_state >> 16) & 0x7FFF;
}

int list_init(int n, int seed) {
    // Build nodes 0..n-1 linked in order; returns head index.
    lcg_state = seed;
    int i = 0;
    while (i < n) {
        list_arena[2 * i] = i + 1;
        list_arena[2 * i + 1] = lcg_next() % 97;
        i = i + 1;
    }
    list_arena[2 * (n - 1)] = 0 - 1;   // null
    return 0;
}

int list_find(int head, int value) {
    int node = head;
    while (node != 0 - 1) {
        if (list_arena[2 * node + 1] == value) {
            return node;
        }
        node = list_arena[2 * node];
    }
    return 0 - 1;
}

int list_reverse(int head) {
    int prev = 0 - 1;
    int node = head;
    while (node != 0 - 1) {
        int next = list_arena[2 * node];
        list_arena[2 * node] = prev;
        prev = node;
        node = next;
    }
    return prev;
}

int list_sort(int head) {
    // Insertion sort on data values; returns new head.
    int sorted = 0 - 1;
    int node = head;
    while (node != 0 - 1) {
        int next = list_arena[2 * node];
        int value = list_arena[2 * node + 1];
        if (sorted == 0 - 1 || list_arena[2 * sorted + 1] >= value) {
            list_arena[2 * node] = sorted;
            sorted = node;
        } else {
            int scan = sorted;
            while (list_arena[2 * scan] != 0 - 1 &&
                   list_arena[2 * list_arena[2 * scan] + 1] < value) {
                scan = list_arena[2 * scan];
            }
            list_arena[2 * node] = list_arena[2 * scan];
            list_arena[2 * scan] = node;
        }
        node = next;
    }
    return sorted;
}

int list_bench(int n, int seed) {
    int head = list_init(n, seed);
    int found = list_find(head, (seed * 11) % 97);
    crc_add(found);
    head = list_reverse(head);
    crc_add(list_arena[2 * head + 1]);
    head = list_sort(head);
    int node = head;
    int checksum = 0;
    while (node != 0 - 1) {
        checksum = checksum * 3 + list_arena[2 * node + 1];
        node = list_arena[2 * node];
    }
    crc_add(checksum);
    return checksum;
}

// ---------------------------- matrix kernel ----------------------------

void matrix_init(int seed) {
    lcg_state = seed * 31 + 3;
    int i = 0;
    while (i < 64) {
        matrix_a[i] = lcg_next() % 31 - 15;
        matrix_b[i] = lcg_next() % 29 - 14;
        i = i + 1;
    }
}

int matrix_mul(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        for (int j = 0; j < n; j++) {
            int acc = 0;
            for (int k = 0; k < n; k++) {
                acc = acc + matrix_a[i * n + k] * matrix_b[k * n + j];
            }
            matrix_c[i * n + j] = acc;
            total = total + (acc & 0xFFFF) - ((acc >> 16) & 0xFFFF);
        }
    }
    return total;
}

int matrix_bit_extract(int n) {
    int total = 0;
    for (int i = 0; i < n * n; i++) {
        int v = matrix_c[i];
        total = total + ((v >> 2) & 15) + ((v >> 7) & 7);
    }
    return total;
}

int matrix_bench(int seed) {
    matrix_init(seed);
    int m = matrix_mul(8);
    crc_add(m);
    int e = matrix_bit_extract(8);
    crc_add(e);
    return m + e;
}

// ---------------------------- state machine ----------------------------

void stream_init(int seed) {
    lcg_state = seed * 7 + 1;
    int i = 0;
    while (i < 64) {
        int sel = lcg_next() % 10;
        if (sel < 4) {
            input_stream[i] = 48 + lcg_next() % 10;     // digit
        } else if (sel < 6) {
            input_stream[i] = 97 + lcg_next() % 6;      // hex letter a-f
        } else if (sel < 7) {
            input_stream[i] = 44;                        // ',' separator
        } else if (sel < 8) {
            input_stream[i] = 46;                        // '.'
        } else {
            input_stream[i] = 120;                       // 'x' flag
        }
        i = i + 1;
    }
}

int state_machine(int len) {
    // states: 0 start, 1 int, 2 float, 3 hex, 4 invalid
    int state = 0;
    int i = 0;
    while (i < len) {
        int ch = input_stream[i];
        if (state == 0) {
            if (ch >= 48 && ch <= 57) { state = 1; }
            else if (ch == 120) { state = 3; }
            else if (ch == 44) { state = 0; }
            else { state = 4; }
        } else if (state == 1) {
            if (ch >= 48 && ch <= 57) { state = 1; }
            else if (ch == 46) { state = 2; }
            else if (ch == 44) { state = 0; }
            else { state = 4; }
        } else if (state == 2) {
            if (ch >= 48 && ch <= 57) { state = 2; }
            else if (ch == 44) { state = 0; }
            else { state = 4; }
        } else if (state == 3) {
            if (ch >= 48 && ch <= 57) { state = 3; }
            else if (ch >= 97 && ch <= 102) { state = 3; }
            else if (ch == 44) { state = 0; }
            else { state = 4; }
        } else {
            if (ch == 44) { state = 0; }
        }
        state_counts[state] = state_counts[state] + 1;
        i = i + 1;
    }
    int total = 0;
    for (int s = 0; s < 5; s++) {
        total = total * 5 + state_counts[s];
    }
    return total;
}

int state_bench(int seed) {
    stream_init(seed);
    int result = state_machine(64);
    crc_add(result);
    return result;
}

// ------------------------------- driver -------------------------------

int main() {
    crc_accum = 0xFFFFFFFF;
    int iterations = @ITERATIONS@;
    int list_result = 0;
    int matrix_result = 0;
    int state_result = 0;
    for (int iter = 0; iter < iterations; iter++) {
        int seed = 17 + iter * 3;
        list_result = list_result + list_bench(24, seed);
        matrix_result = matrix_result + matrix_bench(seed);
        state_result = state_result + state_bench(seed);
    }
    __out(list_result);
    __out(matrix_result);
    __out(state_result);
    __out(crc_accum);
    __out(state_counts[0]);
    __out(state_counts[4]);
    return 0;
}
"""


def source(iterations=3):
    """Mini-C source text for ``iterations`` CoreMark-like runs."""
    return _TEMPLATE.replace("@ITERATIONS@", str(iterations))
