"""Benchmark workloads (mini-C re-implementations of Dhrystone and CoreMark).

The paper evaluates Dhrystone 2.1 and CoreMark (§V-A).  The originals are C
programs; these re-implementations preserve the behavioural properties the
paper's analysis leans on:

* ``dhrystone`` — record/array manipulation, string (word-array) compares,
  a web of small function calls, branch-heavy integer code with mostly
  short-lived values;
* ``coremark`` — linked-list find/sort (pointer chasing), matrix kernels,
  a state machine, and CRC accumulation; it keeps *more values alive across
  control flow*, which is exactly why the paper sees more RMOV overhead on
  CoreMark than on Dhrystone (§VI-A).

Each module exposes ``source(iterations)`` returning mini-C text and
``EXPECTED_OUTPUT_LEN``; correctness is checked by comparing the RV32IM and
STRAIGHT output channels word-for-word.
"""

from repro.workloads import dhrystone, coremark
from repro.workloads.common import (
    Workload,
    WORKLOADS,
    get_workload,
    build_workload,
)

__all__ = [
    "dhrystone",
    "coremark",
    "Workload",
    "WORKLOADS",
    "get_workload",
    "build_workload",
]
