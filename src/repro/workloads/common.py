"""Workload registry and build/validation helpers."""

from repro.common.errors import SimulationError
from repro.core.api import build, run_functional
from repro.workloads import dhrystone as _dhrystone
from repro.workloads import coremark as _coremark


class Workload:
    """A named benchmark: mini-C source generator + default scale.

    ``default_iterations`` keeps a *full* timing run around 10^5 dynamic
    instructions (every paper figure is pinned to it — do not bump it when
    the simulator gets faster).  ``large_iterations`` is the sampled-
    simulation scale: an order of magnitude more work, affordable because
    the fast-forward path never touches the cycle model
    (:mod:`repro.harness.sampling`)."""

    def __init__(self, name, module, default_iterations,
                 large_iterations=None):
        self.name = name
        self.module = module
        self.default_iterations = default_iterations
        self.large_iterations = (
            default_iterations * 10 if large_iterations is None
            else large_iterations
        )

    def source(self, iterations=None):
        return self.module.source(
            self.default_iterations if iterations is None else iterations
        )

    def build(self, iterations=None, max_distance=1023):
        """Compile to every evaluated binary and cross-validate the outputs."""
        result = build(self.source(iterations), max_distance=max_distance)
        reference = run_functional(result.riscv).output
        for name, binary in result.all().items():
            output = run_functional(binary).output
            if output != reference:
                raise SimulationError(
                    f"{self.name}: {name} output {output} != SS {reference}"
                )
        return result


#: Default iteration counts keep one full timing sweep around 10^5 dynamic
#: instructions per binary — the paper's 9000 Dhrystone / 9 CoreMark runs
#: scaled to what a Python cycle model sweeps in seconds (see DESIGN.md).
WORKLOADS = {
    "dhrystone": Workload("dhrystone", _dhrystone, default_iterations=40,
                          large_iterations=400),
    "coremark": Workload("coremark", _coremark, default_iterations=3,
                         large_iterations=30),
}


def get_workload(name):
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


_build_cache = {}


def _artifact_key(workload, iterations, max_distance):
    from repro.harness import cache as cache_mod

    return {
        "kind": "workload-build",
        "tag": cache_mod.TOOLCHAIN_TAG,
        "source": cache_mod.source_digest(
            workload.source(iterations)
        ),
        "max_distance": max_distance,
    }


def build_workload(name, iterations=None, max_distance=1023):
    """Cached cross-validated build of a workload.

    Two layers: an in-process memo, then the persistent artifact cache
    (when enabled — see :mod:`repro.harness.cache`).  Persisted builds are
    keyed on the *generated source digest* plus ``max_distance``, so an
    ``iterations`` override that changes the source lands on its own entry,
    and the expensive compile + three-way cross-validation is paid once per
    (source, backend options) point across all figures and runs.
    """
    key = (name, iterations, max_distance)
    if key not in _build_cache:
        from repro.harness import cache as cache_mod

        workload = get_workload(name)
        artifacts = cache_mod.artifact_cache()
        artifact_key = None
        built = None
        if artifacts is not None:
            artifact_key = _artifact_key(workload, iterations, max_distance)
            built = artifacts.get(artifact_key)
        if built is not None and getattr(built, "bb", None) is None:
            built = None  # stale pre-BB cache entry: rebuild with all labels
        if built is None:
            built = workload.build(iterations, max_distance)
            for binary in built.all().values():
                cache_mod.binary_digest(binary)  # persist digests in the pickle
            if artifacts is not None:
                artifacts.put(artifact_key, built)
        _build_cache[key] = built
    return _build_cache[key]


def peek_cached_build(name, iterations=None, max_distance=1023):
    """A cached build if one exists (memo or disk); never compiles."""
    key = (name, iterations, max_distance)
    built = _build_cache.get(key)
    if built is not None:
        return built
    from repro.harness import cache as cache_mod

    artifacts = cache_mod.artifact_cache()
    if artifacts is None:
        return None
    workload = get_workload(name)
    built = artifacts.get(_artifact_key(workload, iterations, max_distance))
    if built is not None and getattr(built, "bb", None) is None:
        return None  # stale pre-BB cache entry
    if built is not None:
        _build_cache[key] = built
    return built


def clear_build_cache(disk=False):
    """Forget memoized builds; with ``disk`` also the persistent artifacts."""
    _build_cache.clear()
    if disk:
        from repro.harness import cache as cache_mod

        artifacts = cache_mod.artifact_cache()
        if artifacts is not None:
            artifacts.clear()
