"""Workload registry and build/validation helpers."""

from repro.common.errors import SimulationError
from repro.core.api import build, run_functional
from repro.workloads import dhrystone as _dhrystone
from repro.workloads import coremark as _coremark


class Workload:
    """A named benchmark: mini-C source generator + default scale."""

    def __init__(self, name, module, default_iterations):
        self.name = name
        self.module = module
        self.default_iterations = default_iterations

    def source(self, iterations=None):
        return self.module.source(
            self.default_iterations if iterations is None else iterations
        )

    def build(self, iterations=None, max_distance=1023):
        """Compile to all three binaries and cross-validate their outputs."""
        result = build(self.source(iterations), max_distance=max_distance)
        reference = run_functional(result.riscv).output
        for name, binary in result.all().items():
            output = run_functional(binary).output
            if output != reference:
                raise SimulationError(
                    f"{self.name}: {name} output {output} != SS {reference}"
                )
        return result


#: Default iteration counts keep one full timing sweep around 10^5 dynamic
#: instructions per binary — the paper's 9000 Dhrystone / 9 CoreMark runs
#: scaled to what a Python cycle model sweeps in seconds (see DESIGN.md).
WORKLOADS = {
    "dhrystone": Workload("dhrystone", _dhrystone, default_iterations=40),
    "coremark": Workload("coremark", _coremark, default_iterations=3),
}


def get_workload(name):
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


_build_cache = {}


def build_workload(name, iterations=None, max_distance=1023):
    """Cached cross-validated build of a workload."""
    key = (name, iterations, max_distance)
    if key not in _build_cache:
        _build_cache[key] = get_workload(name).build(iterations, max_distance)
    return _build_cache[key]
