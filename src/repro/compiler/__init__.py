"""Compiler backends: SSA IR -> STRAIGHT / RV32IM machine code.

* :func:`repro.compiler.straight_backend.compile_to_straight` implements the
  paper's §IV algorithm: operation translation, the calling convention of
  Fig. 5/6, distance fixing at merges, distance bounding, and the RE+
  redundancy elimination of §IV-D.
* :func:`repro.compiler.riscv_backend.compile_to_riscv` is the conventional
  baseline backend (clang/LLVM substitute): isel to virtual registers,
  phi lowering to parallel copies, linear-scan register allocation with
  callee-saved preferences across calls, standard RV32 frames.
"""

from repro.compiler.data_layout import DataLayout
from repro.compiler.straight_backend import compile_to_straight
from repro.compiler.riscv_backend import compile_to_riscv

__all__ = ["DataLayout", "compile_to_straight", "compile_to_riscv"]
