"""Global variable layout, shared by both backends and linkers.

Assigning data addresses *before* code generation lets both backends emit
absolute address materialization (LUI/ORI pairs) without relocations, and
guarantees the two binaries of one program agree on every global's address —
which keeps their memory traces comparable in the timing model.
"""

from repro.common.layout import DATA_BASE, WORD_BYTES


class DataLayout:
    """Addresses and the initial data image for a module's globals."""

    def __init__(self, module, data_base=DATA_BASE):
        self.data_base = data_base
        self.addresses = {}
        self.size_words = 0
        for name, var in module.globals.items():
            self.addresses[name] = data_base + self.size_words * WORD_BYTES
            self.size_words += var.size_words
        self._module = module

    def address_of(self, name):
        return self.addresses[name]

    def data_words(self):
        """The full initial data segment image."""
        words = []
        for var in self._module.globals.values():
            words.extend(var.init_words())
        return words
