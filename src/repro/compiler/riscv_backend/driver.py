"""RISC-V backend driver: isel -> regalloc -> frames -> assembly."""

from repro.common.errors import CompileError
from repro.riscv.isa import RInstr
from repro.riscv.assembler import AsmUnit
from repro.riscv.linker import link_program, startup_stub
from repro.compiler.common import (
    BaseCompilation,
    compile_module_functions,
    prepare_function,
)
from repro.compiler.data_layout import DataLayout
from repro.compiler.riscv_backend.isel import RiscvISel
from repro.compiler.riscv_backend.regalloc import (
    build_intervals,
    linear_scan,
    eliminate_dead_ops,
    FrameBuilder,
)


class RiscvCompilation(BaseCompilation):
    """The result of compiling a module to RV32IM assembly."""

    def link(self):
        return link_program(
            [startup_stub()] + self.units,
            data_words=self.layout.data_words(),
            data_base=self.layout.data_base,
        )


def compile_to_riscv(module, layout=None):
    """Compile an SSA IR module to RV32IM assembly."""
    layout = layout or DataLayout(module)
    units, stats = compile_module_functions(
        module, lambda func: _compile_function(func, layout)
    )
    return RiscvCompilation(module, units, layout, stats)


def _compile_function(func, layout):
    prepare_function(func)
    isel = RiscvISel(func, layout)
    rvfunc = isel.run()
    dead = eliminate_dead_ops(rvfunc)
    intervals = build_intervals(rvfunc)
    allocation = linear_scan(intervals)
    frame = FrameBuilder(rvfunc, allocation)
    frame_words = frame.run()
    unit = _emit_assembly(rvfunc)
    # Per-function facts for the static verifier (merged into the linked
    # program's manifest): argument count, return kind, frame shape.
    unit.verify_manifest = {
        "functions": {
            rvfunc.name: {
                "num_args": rvfunc.num_args,
                "returns_value": bool(rvfunc.returns_value),
                "frame_words": frame_words,
                "saved": list(allocation.used_callee_saved),
                "saves_ra": bool(frame.save_ra),
            }
        }
    }
    func_stats = {
        "instructions": len(unit.instructions()),
        "spilled_vregs": len(allocation.spilled),
        "frame_words": frame_words,
        "dead_ops_removed": dead,
    }
    return unit, func_stats


def _emit_assembly(rvfunc):
    unit = AsmUnit()
    for block in rvfunc.blocks:
        unit.add_label(block.label)
        for op in block.ops:
            unit.add_instr(_to_rinstr(op))
    return unit


def _to_rinstr(op):
    label = None
    if isinstance(op.target, str):
        label = op.target  # direct call to a function entry label
    elif op.target is not None:
        label = op.target.label
    for reg in (op.rd, op.rs1, op.rs2):
        if reg is not None and not isinstance(reg, int):
            raise CompileError(f"unallocated register {reg!r} in {op!r}")
    if op.mnemonic == "J":
        return RInstr("JAL", rd=0, label=label)
    return RInstr(
        op.mnemonic,
        rd=op.rd,
        rs1=op.rs1,
        rs2=op.rs2,
        imm=op.imm,
        label=label,
    )
