"""Instruction selection: SSA IR -> RV32IM machine IR with virtual registers.

Follows the standard RISC-V conventions: arguments in a0..a7, result in a0,
ra as the link register, sp-relative frames.  Compare-and-branch fusion emits
RISC-V's native BLT/BGE/etc. when an ICmp's only consumer is the block's
conditional branch (what clang does), keeping the baseline honest.

Virtual registers are never assigned to a0..a7/ra; those are used only at
call/return/ecall boundaries via explicit moves, which keeps the linear-scan
allocator free of physical-register interference bookkeeping.
"""

from repro.common.bitops import to_signed, fits_signed, sext
from repro.common.errors import CompileError
from repro.ir.values import ConstantInt, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import (
    BinOp,
    ICmp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Call,
    Ret,
    Br,
    CondBr,
    Phi,
    Output,
    Select,
)
from repro.riscv.linker import ECALL_OUT, ECALL_EXIT
from repro.compiler.common.isel import (
    BINOP_TABLE as _BINOP_TABLE,
    COMMUTATIVE_BINOPS as _COMMUTATIVE,
    build_block_map,
)
from repro.compiler.riscv_backend.machine_ir import VReg, RVOp, RVFunction

# Physical register numbers used by the convention.
ZERO, RA, SP, SCRATCH1, SCRATCH2 = 0, 1, 2, 3, 4
ARG_REGS = list(range(10, 18))  # a0..a7

#: icmp predicate -> (branch-if-true mnemonic, operands swapped)
_BRANCH_TABLE = {
    "eq": ("BEQ", False),
    "ne": ("BNE", False),
    "slt": ("BLT", False),
    "sge": ("BGE", False),
    "ult": ("BLTU", False),
    "uge": ("BGEU", False),
    "sgt": ("BLT", True),
    "sle": ("BGE", True),
    "ugt": ("BLTU", True),
    "ule": ("BGEU", True),
}


class RiscvISel:
    """Translates one IR function into an :class:`RVFunction`."""

    def __init__(self, func, layout):
        self.func = func
        self.layout = layout
        self.rvfunc = RVFunction(
            func.name, len(func.params), not func.return_type.is_void()
        )
        self.block_map = {}
        self.vreg_map = {}  # IR value -> VReg
        self.current = None
        self.fused_icmps = set()
        self.use_counts = self._count_uses()

    def _count_uses(self):
        counts = {}
        for instr in self.func.instructions():
            for op in instr.operands:
                counts[op] = counts.get(op, 0) + 1
        return counts

    # -- plumbing -----------------------------------------------------------

    def emit(self, mnemonic, rd=None, rs1=None, rs2=None, imm=None, target=None):
        op = RVOp(mnemonic, rd, rs1, rs2, imm, target)
        self.current.append(op)
        return op

    def new_vreg(self, name=""):
        return VReg(name)

    def run(self):
        if len(self.func.params) > len(ARG_REGS):
            raise CompileError(
                f"{self.func.name}: more than {len(ARG_REGS)} parameters"
            )
        self.block_map = build_block_map(self.func, self.rvfunc)
        for block in self.func.blocks:
            for instr in block.instructions:
                if isinstance(instr, Alloca):
                    self.rvfunc.alloca_offsets[instr] = self.rvfunc.alloca_words
                    self.rvfunc.alloca_words += instr.size_words
                elif isinstance(instr, Phi):
                    self.vreg_map[instr] = self.new_vreg(instr.name)
        for index, block in enumerate(self.func.blocks):
            self.current = self.block_map[block]
            if index == 0:
                self._emit_arg_moves()
            for instr in block.non_phi_instructions():
                self.select_instruction(instr)
        self._lower_phis()
        return self.rvfunc

    def _emit_arg_moves(self):
        for arg, phys in zip(self.func.params, ARG_REGS):
            vreg = self.new_vreg(arg.name)
            self.vreg_map[arg] = vreg
            self.emit("ADDI", rd=vreg, rs1=phys, imm=0)

    # -- operand resolution ----------------------------------------------------

    def li(self, rd, value):
        """Materialize a 32-bit constant into ``rd`` (LUI/ADDI expansion)."""
        signed = to_signed(value)
        if fits_signed(signed, 12):
            self.emit("ADDI", rd=rd, rs1=ZERO, imm=signed)
            return rd
        lo = sext(value & 0xFFF, 12)
        hi = ((value - lo) >> 12) & 0xFFFFF
        self.emit("LUI", rd=rd, imm=hi)
        if lo:
            self.emit("ADDI", rd=rd, rs1=rd, imm=lo)
        return rd

    def resolve(self, ir_value):
        """Produce a VReg holding ``ir_value`` at this point."""
        if isinstance(ir_value, ConstantInt):
            return self.li(self.new_vreg("const"), ir_value.value)
        if isinstance(ir_value, UndefValue):
            vreg = self.new_vreg("undef")
            self.emit("ADDI", rd=vreg, rs1=ZERO, imm=0)
            return vreg
        if isinstance(ir_value, GlobalVariable):
            return self.li(
                self.new_vreg(ir_value.name), self.layout.address_of(ir_value.name)
            )
        if isinstance(ir_value, Alloca):
            vreg = self.new_vreg(ir_value.name)
            offset = self.rvfunc.alloca_offsets[ir_value] * 4
            self.emit("FRAMEADDR", rd=vreg, imm=offset)
            return vreg
        vreg = self.vreg_map.get(ir_value)
        if vreg is None:
            raise CompileError(f"{self.func.name}: no vreg for {ir_value!r}")
        return vreg

    def define(self, ir_value, vreg):
        self.vreg_map[ir_value] = vreg
        return vreg

    # -- per-instruction selection ---------------------------------------------

    def select_instruction(self, instr):
        if instr in self.fused_icmps:
            return
        if isinstance(instr, BinOp):
            self.define(instr, self._select_binop(instr))
        elif isinstance(instr, ICmp):
            self.define(instr, self._select_icmp(instr))
        elif isinstance(instr, Select):
            self.define(instr, self._select_select(instr))
        elif isinstance(instr, GetElementPtr):
            self.define(instr, self._select_gep(instr))
        elif isinstance(instr, Load):
            vreg = self.new_vreg(instr.name)
            self.emit("LW", rd=vreg, rs1=self.resolve(instr.ptr), imm=0)
            self.define(instr, vreg)
        elif isinstance(instr, Store):
            value = self.resolve(instr.value)
            ptr = self.resolve(instr.ptr)
            self.emit("SW", rs1=ptr, rs2=value, imm=0)
        elif isinstance(instr, Alloca):
            pass
        elif isinstance(instr, Output):
            self.emit("ADDI", rd=ARG_REGS[0], rs1=self.resolve(instr.value), imm=0)
            self.emit("ADDI", rd=17, rs1=ZERO, imm=ECALL_OUT)
            self.emit("ECALL")
        elif isinstance(instr, Call):
            self._select_call(instr)
        elif isinstance(instr, Ret):
            if instr.value is not None:
                self.emit(
                    "ADDI", rd=ARG_REGS[0], rs1=self.resolve(instr.value), imm=0
                )
            self.emit("RET")
        elif isinstance(instr, Br):
            self.emit("J", target=self.block_map[instr.target])
        elif isinstance(instr, CondBr):
            self._select_condbr(instr)
        else:
            raise CompileError(f"{self.func.name}: cannot select {instr!r}")

    def _select_binop(self, instr):
        op = instr.opcode
        reg_op, imm_op = _BINOP_TABLE[op]
        lhs, rhs = instr.lhs, instr.rhs
        if isinstance(lhs, ConstantInt) and op in _COMMUTATIVE:
            lhs, rhs = rhs, lhs
        vreg = self.new_vreg(instr.name)
        if isinstance(rhs, ConstantInt):
            const = to_signed(rhs.value)
            if op == "sub" and fits_signed(-const, 12):
                self.emit("ADDI", rd=vreg, rs1=self.resolve(lhs), imm=-const)
                return vreg
            if imm_op in ("SLLI", "SRLI", "SRAI"):
                self.emit(imm_op, rd=vreg, rs1=self.resolve(lhs), imm=rhs.value & 31)
                return vreg
            if imm_op is not None and fits_signed(const, 12):
                self.emit(imm_op, rd=vreg, rs1=self.resolve(lhs), imm=const)
                return vreg
        self.emit(reg_op, rd=vreg, rs1=self.resolve(lhs), rs2=self.resolve(rhs))
        return vreg

    def _select_icmp(self, instr):
        pred = instr.pred
        lhs, rhs = instr.lhs, instr.rhs
        vreg = self.new_vreg(instr.name)
        if pred in ("sgt", "ugt", "sle", "ule"):
            lhs, rhs = rhs, lhs
            pred = {"sgt": "slt", "ugt": "ult", "sle": "sge", "ule": "uge"}[pred]
        if pred in ("slt", "ult"):
            mnemonic = "SLT" if pred == "slt" else "SLTU"
            if isinstance(rhs, ConstantInt) and fits_signed(to_signed(rhs.value), 12):
                self.emit(
                    mnemonic + "I" if pred == "slt" else "SLTIU",
                    rd=vreg,
                    rs1=self.resolve(lhs),
                    imm=to_signed(rhs.value),
                )
            else:
                self.emit(
                    mnemonic, rd=vreg, rs1=self.resolve(lhs), rs2=self.resolve(rhs)
                )
            return vreg
        if pred in ("sge", "uge"):
            mnemonic = "SLT" if pred == "sge" else "SLTU"
            self.emit(
                mnemonic, rd=vreg, rs1=self.resolve(lhs), rs2=self.resolve(rhs)
            )
            self.emit("XORI", rd=vreg, rs1=vreg, imm=1)
            return vreg
        diff = self._emit_diff(lhs, rhs)
        if pred == "eq":
            self.emit("SLTIU", rd=vreg, rs1=diff, imm=1)
        else:  # ne
            self.emit("SLTU", rd=vreg, rs1=ZERO, rs2=diff)
        return vreg

    def _emit_diff(self, lhs, rhs):
        if isinstance(rhs, ConstantInt) and rhs.value == 0:
            return self.resolve(lhs)
        if isinstance(lhs, ConstantInt) and lhs.value == 0:
            return self.resolve(rhs)
        vreg = self.new_vreg("diff")
        self.emit("XOR", rd=vreg, rs1=self.resolve(lhs), rs2=self.resolve(rhs))
        return vreg

    def _select_select(self, instr):
        cond = self.resolve(instr.cond)
        nz = self.new_vreg("nz")
        self.emit("SLTU", rd=nz, rs1=ZERO, rs2=cond)
        mask = self.new_vreg("mask")
        self.emit("SUB", rd=mask, rs1=ZERO, rs2=nz)
        a_side = self.new_vreg()
        self.emit("AND", rd=a_side, rs1=self.resolve(instr.operands[1]), rs2=mask)
        inv = self.new_vreg()
        self.emit("XORI", rd=inv, rs1=mask, imm=-1)
        b_side = self.new_vreg()
        self.emit("AND", rd=b_side, rs1=self.resolve(instr.operands[2]), rs2=inv)
        result = self.new_vreg(instr.name)
        self.emit("OR", rd=result, rs1=a_side, rs2=b_side)
        return result

    def _select_gep(self, instr):
        base_ir, index_ir = instr.base, instr.index
        vreg = self.new_vreg(instr.name)
        if isinstance(index_ir, ConstantInt):
            byte_off = to_signed(index_ir.value) * 4
            if isinstance(base_ir, Alloca):
                total = self.rvfunc.alloca_offsets[base_ir] * 4 + byte_off
                self.emit("FRAMEADDR", rd=vreg, imm=total)
                return vreg
            if fits_signed(byte_off, 12):
                self.emit("ADDI", rd=vreg, rs1=self.resolve(base_ir), imm=byte_off)
                return vreg
            offset = self.li(self.new_vreg(), byte_off & 0xFFFFFFFF)
            self.emit("ADD", rd=vreg, rs1=self.resolve(base_ir), rs2=offset)
            return vreg
        scaled = self.new_vreg("scaled")
        self.emit("SLLI", rd=scaled, rs1=self.resolve(index_ir), imm=2)
        self.emit("ADD", rd=vreg, rs1=self.resolve(base_ir), rs2=scaled)
        return vreg

    def _select_condbr(self, instr):
        cond = instr.cond
        iftrue = self.block_map[instr.iftrue]
        iffalse = self.block_map[instr.iffalse]
        if (
            isinstance(cond, ICmp)
            and cond.parent is instr.parent
            and self.use_counts.get(cond, 0) == 1
        ):
            mnemonic, swapped = _BRANCH_TABLE[cond.pred]
            lhs, rhs = cond.lhs, cond.rhs
            if swapped:
                lhs, rhs = rhs, lhs
            self.fused_icmps.add(cond)
            self.emit(
                mnemonic,
                rs1=self._branch_operand(lhs),
                rs2=self._branch_operand(rhs),
                target=iftrue,
            )
            self.emit("J", target=iffalse)
            return
        self.emit("BNE", rs1=self.resolve(cond), rs2=ZERO, target=iftrue)
        self.emit("J", target=iffalse)

    def _branch_operand(self, ir_value):
        if isinstance(ir_value, ConstantInt) and ir_value.value == 0:
            return ZERO
        return self.resolve(ir_value)

    def _select_call(self, instr):
        callee = instr.callee_name()
        if callee == "__halt":
            self.emit("ADDI", rd=ARG_REGS[0], rs1=ZERO, imm=0)
            self.emit("ADDI", rd=17, rs1=ZERO, imm=ECALL_EXIT)
            self.emit("ECALL")
            return
        if len(instr.operands) > len(ARG_REGS):
            raise CompileError(f"call to {callee}: too many arguments")
        # Resolve argument values first (their materializations may be long),
        # then move them into a0.. right before the JAL.
        resolved = []
        for arg in instr.operands:
            if isinstance(arg, ConstantInt):
                resolved.append(("const", arg.value))
            else:
                resolved.append(("vreg", self.resolve(arg)))
        for (kind, payload), phys in zip(resolved, ARG_REGS):
            if kind == "const":
                self.li(phys, payload)
            else:
                self.emit("ADDI", rd=phys, rs1=payload, imm=0)
        self.emit("JAL", rd=RA, target=callee)
        self.rvfunc.makes_calls = True
        if not instr.type.is_void():
            vreg = self.new_vreg(instr.name)
            self.emit("ADDI", rd=vreg, rs1=ARG_REGS[0], imm=0)
            self.define(instr, vreg)

    # -- phi lowering ----------------------------------------------------------

    def _lower_phis(self):
        """Insert sequentialized parallel copies in each merge predecessor."""
        preds = self.func.predecessors()
        for block in self.func.blocks:
            phis = block.phis()
            if not phis:
                continue
            for pred in preds[block]:
                self._emit_parallel_copy(block, pred, phis)

    def _emit_parallel_copy(self, block, pred, phis):
        mpred = self.block_map[pred]
        pending = {}
        for phi in phis:
            incoming = phi.incoming_for(pred)
            dst = self.vreg_map[phi]
            if incoming is phi:
                continue
            if isinstance(
                incoming, (ConstantInt, GlobalVariable, Alloca, UndefValue)
            ):
                pending[dst] = incoming  # materializations never conflict
            else:
                source = self.vreg_map.get(incoming)
                if source is None:
                    raise CompileError(f"no vreg for phi incoming {incoming!r}")
                if source is not dst:
                    pending[dst] = source

        while pending:
            ready = [
                dst
                for dst in pending
                if not any(src is dst for src in pending.values())
            ]
            if ready:
                dst = ready[0]
                source = pending.pop(dst)
                if isinstance(source, VReg):
                    mpred.insert_before_terminator(
                        RVOp("ADDI", rd=dst, rs1=source, imm=0)
                    )
                else:
                    self._insert_materialization(mpred, dst, source)
            else:
                # A copy cycle: save one destination's current value in a
                # temporary and redirect its readers (the swap problem).
                dst = next(iter(pending))
                tmp = self.new_vreg("cyc")
                mpred.insert_before_terminator(RVOp("ADDI", rd=tmp, rs1=dst, imm=0))
                pending = {
                    d: (tmp if s is dst else s) for d, s in pending.items()
                }

    def _insert_materialization(self, mpred, dst, source):
        ops = []
        if isinstance(source, UndefValue):
            ops.append(RVOp("ADDI", rd=dst, rs1=ZERO, imm=0))
        elif isinstance(source, ConstantInt):
            ops.extend(self._li_ops(dst, source.value))
        elif isinstance(source, GlobalVariable):
            ops.extend(self._li_ops(dst, self.layout.address_of(source.name)))
        elif isinstance(source, Alloca):
            offset = self.rvfunc.alloca_offsets[source] * 4
            ops.append(RVOp("FRAMEADDR", rd=dst, imm=offset))
        else:
            raise CompileError(f"bad phi incoming {source!r}")
        for op in ops:
            mpred.insert_before_terminator(op)

    def _li_ops(self, rd, value):
        signed = to_signed(value)
        if fits_signed(signed, 12):
            return [RVOp("ADDI", rd=rd, rs1=ZERO, imm=signed)]
        lo = sext(value & 0xFFF, 12)
        hi = ((value - lo) >> 12) & 0xFFFFF
        ops = [RVOp("LUI", rd=rd, imm=hi)]
        if lo:
            ops.append(RVOp("ADDI", rd=rd, rs1=rd, imm=lo))
        return ops
