"""Linear-scan register allocation and frame finalization for RV32IM.

Classic Poletto–Sarkar linear scan over live intervals built from
machine-level liveness.  Intervals that cross a call site may only receive
callee-saved registers (s0..s11); others prefer temporaries (t0..t6).
Spilled virtual registers are rewritten to loads/stores through two reserved
scratch registers (gp/tp, unused by the runtime convention).
"""

from repro.common.errors import CompileError
from repro.compiler.riscv_backend.machine_ir import VReg, RVOp

T_REGS = [5, 6, 7, 28, 29, 30, 31]  # t0-t2, t3-t6
S_REGS = [8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27]  # s0-s11
SCRATCH1, SCRATCH2 = 3, 4  # gp, tp
SP, RA = 2, 1


class AllocationResult:
    """Register assignment plus spill decisions."""

    def __init__(self, assignment, spilled, used_callee_saved):
        self.assignment = assignment  # VReg -> phys int
        self.spilled = spilled  # ordered list of spilled VRegs
        self.used_callee_saved = used_callee_saved  # sorted phys list


class _Interval:
    __slots__ = ("vreg", "start", "end", "crosses_call")

    def __init__(self, vreg, start, end, crosses_call):
        self.vreg = vreg
        self.start = start
        self.end = end
        self.crosses_call = crosses_call

    def __repr__(self):
        return f"[{self.start},{self.end}] {self.vreg} call={self.crosses_call}"


def _block_successors(rvfunc):
    succs = {}
    for block in rvfunc.blocks:
        out = []
        for op in block.ops:
            if op.target is not None and not isinstance(op.target, str):
                out.append(op.target)
        succs[block] = out
    return succs


def _machine_liveness(rvfunc):
    succs = _block_successors(rvfunc)
    use, defs = {}, {}
    for block in rvfunc.blocks:
        u, d = set(), set()
        for op in block.ops:
            for reg in op.uses():
                if reg not in d:
                    u.add(reg)
            for reg in op.defs():
                d.add(reg)
        use[block], defs[block] = u, d
    live_in = {b: set() for b in rvfunc.blocks}
    live_out = {b: set() for b in rvfunc.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(rvfunc.blocks):
            out = set()
            for succ in succs[block]:
                out |= live_in[succ]
            new_in = use[block] | (out - defs[block])
            if out != live_out[block] or new_in != live_in[block]:
                live_out[block], live_in[block] = out, new_in
                changed = True
    return live_in, live_out


def build_intervals(rvfunc):
    """Live intervals over the linearized op order, plus call positions."""
    live_in, live_out = _machine_liveness(rvfunc)
    position = 0
    starts, ends = {}, {}
    call_positions = []

    def touch(reg, pos):
        if reg not in starts:
            starts[reg] = pos
        ends[reg] = max(ends.get(reg, pos), pos)

    for block in rvfunc.blocks:
        block_start = position
        for reg in live_in[block]:
            touch(reg, block_start)
        for op in block.ops:
            for reg in op.uses():
                touch(reg, position)
            for reg in op.defs():
                touch(reg, position)
            if op.is_call():
                call_positions.append(position)
            position += 1
        block_end = position - 1 if position > block_start else block_start
        for reg in live_out[block]:
            touch(reg, block_end)
    intervals = []
    for reg, start in starts.items():
        end = ends[reg]
        crosses = any(start < pos < end for pos in call_positions)
        intervals.append(_Interval(reg, start, end, crosses))
    intervals.sort(key=lambda iv: (iv.start, iv.vreg.id))
    return intervals


def linear_scan(intervals):
    """Allocate registers; returns an :class:`AllocationResult`."""
    assignment = {}
    spilled = []
    active = []  # (interval, phys) sorted by end

    def free_regs_for(interval):
        pool = S_REGS if interval.crosses_call else T_REGS + S_REGS
        taken = {phys for iv, phys in active if _overlaps(iv, interval)}
        return [r for r in pool if r not in taken]

    for interval in intervals:
        active = [(iv, phys) for iv, phys in active if iv.end >= interval.start]
        free = free_regs_for(interval)
        if free:
            phys = free[0]
            assignment[interval.vreg] = phys
            active.append((interval, phys))
            active.sort(key=lambda pair: pair[0].end)
            continue
        # Spill the conflicting interval that ends furthest away.
        pool = set(S_REGS if interval.crosses_call else T_REGS + S_REGS)
        candidates = [
            (iv, phys)
            for iv, phys in active
            if phys in pool and _overlaps(iv, interval) and not (
                iv.crosses_call and not interval.crosses_call
            )
        ]
        victim = max(candidates, key=lambda pair: pair[0].end, default=None)
        if victim is not None and victim[0].end > interval.end:
            iv, phys = victim
            spilled.append(iv.vreg)
            assignment.pop(iv.vreg, None)
            active.remove(victim)
            assignment[interval.vreg] = phys
            active.append((interval, phys))
            active.sort(key=lambda pair: pair[0].end)
        else:
            spilled.append(interval.vreg)
    used_callee_saved = sorted(
        {phys for phys in assignment.values() if phys in S_REGS}
    )
    return AllocationResult(assignment, spilled, used_callee_saved)


def _overlaps(a, b):
    return a.start <= b.end and b.start <= a.end


def eliminate_dead_ops(rvfunc):
    """Drop pure ops whose virtual destination is never read (machine DCE)."""
    removed_total = 0
    pure = {
        "ADD", "SUB", "SLL", "SLT", "SLTU", "XOR", "SRL", "SRA", "OR", "AND",
        "MUL", "ADDI", "SLTI", "SLTIU", "XORI", "ORI", "ANDI", "SLLI", "SRLI",
        "SRAI", "LUI", "FRAMEADDR", "LW",
    }
    while True:
        used = set()
        for block in rvfunc.blocks:
            for op in block.ops:
                used.update(op.uses())
        removed = 0
        for block in rvfunc.blocks:
            kept = []
            for op in block.ops:
                if (
                    op.mnemonic in pure
                    and isinstance(op.rd, VReg)
                    and op.rd not in used
                ):
                    removed += 1
                    continue
                kept.append(op)
            block.ops = kept
        removed_total += removed
        if removed == 0:
            return removed_total


class FrameBuilder:
    """Applies allocation results: spill code, frames, prologue/epilogue."""

    def __init__(self, rvfunc, allocation):
        self.rvfunc = rvfunc
        self.allocation = allocation
        self.spill_slots = {
            vreg: rvfunc.alloca_words + index
            for index, vreg in enumerate(allocation.spilled)
        }
        saved_base = rvfunc.alloca_words + len(allocation.spilled)
        self.saved_offsets = {
            phys: saved_base + index
            for index, phys in enumerate(allocation.used_callee_saved)
        }
        self.ra_offset = saved_base + len(allocation.used_callee_saved)
        self.save_ra = rvfunc.makes_calls
        self.frame_words = self.ra_offset + (1 if self.save_ra else 0)

    def run(self):
        for block in self.rvfunc.blocks:
            block.ops = self._rewrite_block(block)
        self._insert_prologue()
        return self.frame_words

    # -- rewriting ----------------------------------------------------------------

    def _phys(self, reg):
        if isinstance(reg, VReg):
            phys = self.allocation.assignment.get(reg)
            if phys is None:
                raise CompileError(f"vreg {reg} neither allocated nor spilled")
            return phys
        return reg

    def _rewrite_block(self, block):
        out = []
        for op in block.ops:
            if op.mnemonic == "RET":
                out.extend(self._epilogue())
                continue
            out.extend(self._rewrite_op(op))
        return out

    def _rewrite_op(self, op):
        ops = []
        rs1, rs2, rd = op.rs1, op.rs2, op.rd
        if isinstance(rs1, VReg) and rs1 in self.spill_slots:
            ops.append(
                RVOp("LW", rd=SCRATCH1, rs1=SP, imm=self.spill_slots[rs1] * 4)
            )
            rs1 = SCRATCH1
        if isinstance(rs2, VReg) and rs2 in self.spill_slots:
            ops.append(
                RVOp("LW", rd=SCRATCH2, rs1=SP, imm=self.spill_slots[rs2] * 4)
            )
            rs2 = SCRATCH2
        spill_store = None
        if isinstance(rd, VReg) and rd in self.spill_slots:
            spill_store = RVOp(
                "SW", rs1=SP, rs2=SCRATCH1, imm=self.spill_slots[rd] * 4
            )
            rd = SCRATCH1
        if op.mnemonic == "FRAMEADDR":
            ops.append(RVOp("ADDI", rd=self._phys_or(rd), rs1=SP, imm=op.imm))
        else:
            ops.append(
                RVOp(
                    op.mnemonic,
                    rd=self._phys_or(rd),
                    rs1=self._phys_or(rs1),
                    rs2=self._phys_or(rs2),
                    imm=op.imm,
                    target=op.target,
                )
            )
        if spill_store is not None:
            ops.append(spill_store)
        return ops

    def _phys_or(self, reg):
        return self._phys(reg) if isinstance(reg, VReg) else reg

    # -- prologue / epilogue ----------------------------------------------------

    def _insert_prologue(self):
        if self.frame_words == 0:
            return
        entry = self.rvfunc.blocks[0]
        prologue = [RVOp("ADDI", rd=SP, rs1=SP, imm=-self.frame_words * 4)]
        if self.save_ra:
            prologue.append(RVOp("SW", rs1=SP, rs2=RA, imm=self.ra_offset * 4))
        for phys, slot in self.saved_offsets.items():
            prologue.append(RVOp("SW", rs1=SP, rs2=phys, imm=slot * 4))
        entry.ops = prologue + entry.ops

    def _epilogue(self):
        ops = []
        if self.frame_words:
            for phys, slot in self.saved_offsets.items():
                ops.append(RVOp("LW", rd=phys, rs1=SP, imm=slot * 4))
            if self.save_ra:
                ops.append(RVOp("LW", rd=RA, rs1=SP, imm=self.ra_offset * 4))
            ops.append(RVOp("ADDI", rd=SP, rs1=SP, imm=self.frame_words * 4))
        ops.append(RVOp("JALR", rd=0, rs1=RA, imm=0))
        return ops
