"""Backend machine IR for RV32IM code generation.

Instructions carry virtual registers (:class:`VReg`) or fixed physical
register numbers (plain ints) in their operand fields; linear-scan register
allocation replaces the former.  ``target`` holds a block (branches) or a
callee name (calls).
"""

from repro.compiler.common.machine_ir import MachineBlockBase, MachineFunctionBase


class VReg:
    """A virtual register."""

    _next_id = 0

    def __init__(self, name=""):
        self.id = VReg._next_id
        VReg._next_id += 1
        self.name = name

    def __repr__(self):
        return f"v{self.id}" + (f"({self.name})" if self.name else "")


class RVOp:
    """One machine operation with possibly-virtual operands."""

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "imm", "target")

    def __init__(self, mnemonic, rd=None, rs1=None, rs2=None, imm=None, target=None):
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.target = target

    def is_call(self):
        return self.mnemonic == "JAL" and isinstance(self.target, str)

    def is_terminator(self):
        if self.mnemonic in ("BEQ", "BNE", "BLT", "BGE", "BLTU", "BGEU", "RET"):
            return True
        return self.mnemonic in ("J",) or (
            self.mnemonic == "JAL" and not isinstance(self.target, str)
        )

    def uses(self):
        """Virtual registers read by this op."""
        return [r for r in (self.rs1, self.rs2) if isinstance(r, VReg)]

    def defs(self):
        """Virtual registers written by this op."""
        return [self.rd] if isinstance(self.rd, VReg) else []

    def __repr__(self):
        fields = [self.mnemonic]
        for name in ("rd", "rs1", "rs2"):
            value = getattr(self, name)
            if value is not None:
                fields.append(f"{name}={value}")
        if self.imm is not None:
            fields.append(f"imm={self.imm}")
        if self.target is not None:
            label = getattr(self.target, "label", self.target)
            fields.append(f"-> {label}")
        return " ".join(str(f) for f in fields)


class RVBlock(MachineBlockBase):
    """A machine basic block."""

    def __init__(self, label, ir_block=None):
        super().__init__(label, ir_block)
        self.ops = []

    def body(self):
        return self.ops

    def append(self, op):
        self.ops.append(op)
        return op

    def insert_before_terminator(self, op):
        index = len(self.ops)
        while index > 0 and self.ops[index - 1].is_terminator():
            index -= 1
        self.ops.insert(index, op)
        return op


class RVFunction(MachineFunctionBase):
    """A function in backend machine form."""

    BLOCK_CLS = RVBlock

    def __init__(self, name, num_args, returns_value):
        super().__init__(name, num_args, returns_value)
        self.alloca_offsets = {}  # IR Alloca -> word offset within frame
        self.alloca_words = 0
