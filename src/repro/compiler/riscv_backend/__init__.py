"""RV32IM code generation (the conventional baseline backend)."""

from repro.compiler.riscv_backend.driver import compile_to_riscv

__all__ = ["compile_to_riscv"]
