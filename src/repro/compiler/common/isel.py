"""Shared instruction-selection helpers.

Block labelling and the IR-binop translation tables are identical across
backends (every target here borrows RISC-V mnemonics for its ALU ops, and
linked symbol names follow the same ``func`` / ``func.block`` convention), so
they live once.
"""

#: IR binop -> (register mnemonic, immediate mnemonic or None).
BINOP_TABLE = {
    "add": ("ADD", "ADDI"),
    "sub": ("SUB", None),
    "mul": ("MUL", None),
    "sdiv": ("DIV", None),
    "udiv": ("DIVU", None),
    "srem": ("REM", None),
    "urem": ("REMU", None),
    "and": ("AND", "ANDI"),
    "or": ("OR", "ORI"),
    "xor": ("XOR", "XORI"),
    "shl": ("SLL", "SLLI"),
    "lshr": ("SRL", "SRLI"),
    "ashr": ("SRA", "SRAI"),
}

#: IR binops whose operands may be swapped to expose an immediate form.
COMMUTATIVE_BINOPS = frozenset({"add", "mul", "and", "or", "xor"})


def block_label(func_name, index, block):
    """The linked symbol for the ``index``-th block of a function.

    The entry block *is* the function symbol (calls land there); every other
    block gets a dotted internal label.
    """
    return func_name if index == 0 else f"{func_name}.{block.name}"


def build_block_map(ir_func, machine_func):
    """Create one machine block per IR block; returns the IR->machine map."""
    block_map = {}
    for index, block in enumerate(ir_func.blocks):
        label = block_label(machine_func.name, index, block)
        block_map[block] = machine_func.add_block(label, block)
    return block_map
