"""Base classes for backend machine IRs.

A machine function is an ordered list of labelled machine blocks; what a
block *contains* is ISA-specific (distance-operand :class:`MInst` for
STRAIGHT, virtual-register :class:`RVOp` for RISC-V), so the base classes own
only the shared skeleton: identity, block bookkeeping, and debug rendering.
"""


class MachineBlockBase:
    """A labelled machine basic block; subclasses own the op list."""

    def __init__(self, label, ir_block=None):
        self.label = label
        self.ir_block = ir_block

    def body(self):
        """The block's machine operations (subclass storage)."""
        raise NotImplementedError

    def __repr__(self):
        lines = [f"{self.label}:"]
        lines.extend(f"  {op!r}" for op in self.body())
        return "\n".join(lines)


class MachineFunctionBase:
    """A function in backend machine form.

    ``BLOCK_CLS`` names the subclass's block type; :meth:`add_block` builds
    and appends one.
    """

    BLOCK_CLS = MachineBlockBase

    def __init__(self, name, num_args, returns_value):
        self.name = name
        self.num_args = num_args
        self.returns_value = returns_value
        self.blocks = []
        self.makes_calls = False

    def add_block(self, label, ir_block=None):
        block = self.BLOCK_CLS(label, ir_block)
        self.blocks.append(block)
        return block

    def __repr__(self):
        return "\n".join(repr(b) for b in self.blocks)
