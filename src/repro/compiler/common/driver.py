"""ISA-independent backend driver machinery."""

from repro.ir.instructions import Br
from repro.ir.passes.split_critical_edges import split_critical_edges
from repro.ir.verifier import verify_function


def ensure_entry_has_no_preds(func):
    """Give ``func`` a dedicated entry block if the current one has preds.

    Both conventions require it: STRAIGHT merge refreshes cannot target the
    convention-defined entry block, and the RISC-V prologue must run exactly
    once.  Inserts a fresh ``preentry`` block that just branches to the old
    entry.
    """
    entry = func.entry
    if func.predecessors()[entry]:
        from repro.ir.basicblock import BasicBlock

        pre = BasicBlock(func.unique_name("preentry"), parent=func)
        pre.append(Br(entry))
        func.blocks.insert(0, pre)


def prepare_function(func):
    """The canonical pre-isel pipeline every backend runs.

    Splits critical edges (so merge/phi copies have a home), normalizes the
    entry block, and verifies the result — isel may assume a well-formed CFG.
    """
    split_critical_edges(func)
    ensure_entry_has_no_preds(func)
    verify_function(func)


def compile_module_functions(module, compile_one):
    """Run ``compile_one(func) -> (unit, stats)`` over every function.

    Returns ``(units, stats)`` where ``units`` is the list of per-function
    assembly units in module order and ``stats`` maps function name to the
    backend's per-function statistics dict.
    """
    units = []
    stats = {}
    for func in module.functions.values():
        unit, func_stats = compile_one(func)
        units.append(unit)
        stats[func.name] = func_stats
    return units, stats


class BaseCompilation:
    """The result of compiling a module to one ISA's assembly.

    Subclasses supply :meth:`link`; everything else — the carried module,
    per-function units and stats, the data layout, and assembly rendering —
    is common.
    """

    def __init__(self, module, units, layout, stats):
        self.module = module
        self.units = units  # list of AsmUnit, one per function
        self.layout = layout
        self.stats = stats  # per-function dict of compile statistics

    def asm_text(self):
        """The full program's assembly listing."""
        return "\n".join(unit.to_text() for unit in self.units)

    def link(self):
        """Link with the startup stub into an executable program image."""
        raise NotImplementedError
