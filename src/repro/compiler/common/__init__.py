"""Shared backend skeleton: the ISA-independent parts of code generation.

Every backend follows the same shape — prepare the IR function (critical-edge
splitting, entry normalization, verification), select instructions into a
machine IR of labelled blocks, emit per-function assembly units, and wrap the
result in a compilation object that can render assembly text and link an
executable image.  This package holds that shape once:

* :mod:`.driver` — :class:`BaseCompilation`, :func:`prepare_function` and the
  generic per-function module loop;
* :mod:`.machine_ir` — base classes for machine blocks and functions;
* :mod:`.isel` — block labelling / block-map construction and the shared
  IR-binop translation tables.

Concrete backends (:mod:`repro.compiler.straight_backend`,
:mod:`repro.compiler.riscv_backend`, :mod:`repro.compiler.bb_backend`) keep
only what is genuinely ISA-specific: operand representation (distances vs.
virtual registers), calling convention, and their post-isel passes.
"""

from repro.compiler.common.driver import (
    BaseCompilation,
    compile_module_functions,
    ensure_entry_has_no_preds,
    prepare_function,
)
from repro.compiler.common.machine_ir import MachineBlockBase, MachineFunctionBase
from repro.compiler.common.isel import (
    BINOP_TABLE,
    COMMUTATIVE_BINOPS,
    block_label,
    build_block_map,
)

__all__ = [
    "BaseCompilation",
    "compile_module_functions",
    "ensure_entry_has_no_preds",
    "prepare_function",
    "MachineBlockBase",
    "MachineFunctionBase",
    "BINOP_TABLE",
    "COMMUTATIVE_BINOPS",
    "block_label",
    "build_block_map",
]
