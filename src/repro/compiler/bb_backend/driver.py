"""``bb`` backend driver: the RV32IM pipeline, then block-header annotation.

BasicBlocker deliberately changes nothing about register allocation or the
calling convention — the whole scheme lives at basic-block granularity — so
this backend *is* the RV32IM backend followed by :mod:`repro.bb.bbify` over
the emitted assembly units.
"""

from repro.common.errors import CompileError
from repro.bb.bbify import bbify_units
from repro.bb.linker import link_program, startup_stub
from repro.compiler.common import BaseCompilation
from repro.compiler.riscv_backend.driver import compile_to_riscv


class BbCompilation(BaseCompilation):
    """The result of compiling a module to ``bb`` assembly."""

    def link(self):
        return link_program(
            [startup_stub()] + self.units,
            data_words=self.layout.data_words(),
            data_base=self.layout.data_base,
        )

    def verify(self, lint=False):
        """Statically verify the linked image's block-header structure."""
        from repro.bb.verify import verify_program

        return verify_program(self.link(), lint=lint)


def compile_to_bb(module, layout=None, verify=False):
    """Compile an SSA IR module to BasicBlocker-annotated RV32IM assembly."""
    rv = compile_to_riscv(module, layout=layout)
    units = bbify_units(rv.units)
    stats = {}
    for unit, (name, func_stats) in zip(units, rv.stats.items()):
        headers = sum(1 for i in unit.instructions() if i.mnemonic == "BB")
        stats[name] = dict(
            func_stats,
            instructions=len(unit.instructions()),
            bb_headers=headers,
        )
    compilation = BbCompilation(rv.module, units, rv.layout, stats)
    if verify:
        report = compilation.verify()
        if report.has_errors():
            raise CompileError(
                "block-header verification failed:\n" + report.text(max_items=20)
            )
    return compilation
