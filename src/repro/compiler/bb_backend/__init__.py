"""BasicBlocker backend: the RV32IM backend plus the bbify header pass."""

from repro.compiler.bb_backend.driver import BbCompilation, compile_to_bb

__all__ = ["BbCompilation", "compile_to_bb"]
