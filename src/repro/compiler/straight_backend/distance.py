"""Distance fixing and bounding (paper §IV-C2, §IV-C3), plus final emission.

The central invariant: at every program point, each *logical value* has one
well-defined **age** — the distance a consumer placed at that point would
encode — and that age is identical along every control-flow path reaching
the point.  Three mechanisms maintain it:

* **merge refreshes**: every predecessor of a merge block appends one
  producer instruction per refresh item (RMOV for pass-through values and
  register-carried phi inputs; ADDI/LD/SPADD for constant, frame-resident,
  or frame-pointer inputs) in a canonical order, followed by its J, so entry
  ages at the merge are path-independent by construction;
* **calls** kill all ages (callee length is dynamic); the calling convention
  re-establishes known ages (return value at distance 2) and everything else
  returns via the frame;
* **bounding relays**: a forward walk inserts RMOVs whenever a still-needed
  value's age approaches the ISA maximum distance.

The walk simultaneously assigns every operand's numeric distance, producing
encodable :class:`~repro.straight.isa.SInstr` output.
"""

from repro.common.bitops import to_signed, fits_signed
from repro.common.errors import CompileError
from repro.ir.values import ConstantInt, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import Instruction, Alloca
from repro.straight.isa import SInstr
from repro.compiler.straight_backend.machine_ir import MInst, ZERO, RefreshItem
from repro.compiler.straight_backend.frame import RETADDR_KEY


# ---------------------------------------------------------------------------
# Refresh list construction
# ---------------------------------------------------------------------------


class _RefreshSource:
    """How one predecessor produces one refresh item (exactly one instr)."""

    __slots__ = ("kind", "payload", "fp")

    def __init__(self, kind, payload=None, fp=None):
        self.kind = kind  # 'rmov' | 'addi' | 'ld' | 'fpaddi' | 'sunk'
        self.payload = payload
        self.fp = fp


def build_refresh_lists(mfunc, func, liveness, frame, value_map, layout):
    """Populate ``refresh_list`` for every merge block of ``mfunc``.

    Also inserts per-predecessor setup instructions (big-constant
    materialization, SPADD 0 for frame access) ahead of the refresh point.
    """
    block_of = {b.ir_block: b for b in mfunc.blocks if b.ir_block is not None}

    def rc_value(ir_value):
        """Map an IR value to its register-carried MValue, or None."""
        if isinstance(ir_value, Alloca) or ir_value in frame.spilled:
            return None
        return value_map.get(ir_value)

    for mblock in mfunc.blocks:
        if not mblock.is_merge or mblock.ir_block is None:
            continue
        ir_block = mblock.ir_block
        items = []
        for phi in ir_block.phis():
            target = value_map[phi]
            item = RefreshItem(target)
            for ir_pred, incoming in (
                (pred, phi.incoming_for(pred)) for pred in func.predecessors()[ir_block]
            ):
                mpred = block_of[ir_pred]
                item.sources_by_pred[mpred] = _incoming_source(
                    incoming, mpred, frame, value_map, layout, mfunc
                )
            items.append(item)
        carried = []
        for ir_value in liveness.live_in[ir_block]:
            mval = rc_value(ir_value)
            if mval is not None:
                carried.append(mval)
        if not frame.retaddr_spilled:
            carried.append(mfunc.retaddr)
        items.extend(RefreshItem(v) for v in sorted(set(carried), key=lambda v: v.uid))
        mblock.refresh_list = items
        if len(items) + 1 >= 1000:
            raise CompileError(
                f"{mfunc.name}/{mblock.label}: {len(items)} live values exceed "
                "what a refresh sequence can pin"
            )


def _pred_fp(mpred, mfunc):
    """The predecessor's frame-pointer value, materializing one if needed."""
    fp = getattr(mpred, "block_fp", None)
    if fp is None:
        if mfunc.frame_words == 0:
            raise CompileError(
                f"{mfunc.name}/{mpred.label}: refresh needs a frame pointer "
                "but the function has no frame"
            )
        fp = MInst("SPADD", imm=0, comment="remat fp (refresh)")
        _insert_before_terminator(mpred, fp)
        mpred.block_fp = fp
    return fp


def _insert_before_terminator(mblock, inst):
    index = len(mblock.instrs)
    while index > 0 and mblock.instrs[index - 1].is_terminator():
        index -= 1
    mblock.instrs.insert(index, inst)


def _incoming_source(incoming, mpred, frame, value_map, layout, mfunc):
    """Build the one-instruction producer spec for a phi input in ``mpred``."""
    if isinstance(incoming, UndefValue):
        return _RefreshSource("addi", 0)
    if isinstance(incoming, ConstantInt):
        signed = to_signed(incoming.value)
        if fits_signed(signed, 15):
            return _RefreshSource("addi", signed)
        premat = _materialize_into(mpred, incoming.value)
        return _RefreshSource("rmov", premat)
    if isinstance(incoming, GlobalVariable):
        premat = _materialize_into(mpred, layout.address_of(incoming.name))
        return _RefreshSource("rmov", premat)
    if isinstance(incoming, Alloca):
        return _RefreshSource(
            "fpaddi",
            frame.byte_offset_of_alloca(incoming),
            fp=_pred_fp(mpred, mfunc),
        )
    if incoming in frame.spilled:
        return _RefreshSource(
            "ld", frame.slot_of(incoming), fp=_pred_fp(mpred, mfunc)
        )
    mval = value_map.get(incoming)
    if mval is None:
        raise CompileError(f"no machine value for phi input {incoming!r}")
    return _RefreshSource("rmov", mval)


def _materialize_into(mblock, value):
    """Insert a big-constant materialization before the refresh point."""
    signed = to_signed(value)
    if fits_signed(signed, 15):
        inst = MInst("ADDI", [ZERO], imm=signed)
        _insert_before_terminator(mblock, inst)
        return inst
    hi = (value >> 12) & 0xFFFFF
    lo = value & 0xFFF
    lui = MInst("LUI", imm=hi)
    _insert_before_terminator(mblock, lui)
    if lo:
        ori = MInst("ORI", [lui], imm=lo)
        _insert_before_terminator(mblock, ori)
        return ori
    return lui


# ---------------------------------------------------------------------------
# The distance walk
# ---------------------------------------------------------------------------


class DistanceWalker:
    """Assigns operand distances, emits refreshes, inserts bounding relays."""

    def __init__(self, mfunc, func, liveness, frame, value_map, max_distance):
        self.mfunc = mfunc
        self.func = func
        self.liveness = liveness
        self.frame = frame
        self.value_map = value_map
        self.max_distance = max_distance
        self.entry_ages = {}  # MBlock -> ages dict (for single-pred blocks)
        self.rc_live_in = {}  # MBlock -> set of MValues
        self.rmov_relays = 0

    # -- precomputed sets ------------------------------------------------------

    def _compute_rc_live_in(self):
        for mblock in self.mfunc.blocks:
            values = set()
            if mblock.ir_block is not None:
                for ir_value in self.liveness.live_in[mblock.ir_block]:
                    if isinstance(ir_value, Alloca) or ir_value in self.frame.spilled:
                        continue
                    mval = self.value_map.get(ir_value)
                    if mval is not None:
                        values.add(mval)
                for phi in mblock.ir_block.phis():
                    values.add(self.value_map[phi])
            if not self.frame.retaddr_spilled:
                values.add(self.mfunc.retaddr)
            self.rc_live_in[mblock] = values

    def _refresh_uses(self, pred, merge):
        """Values ``pred`` consumes while emitting ``merge``'s refreshes."""
        uses = []
        for item in merge.refresh_list:
            if pred in item.sunk_def_by_pred:
                uses.extend(
                    s for s in item.sunk_def_by_pred[pred].srcs if s is not ZERO
                )
                continue
            spec = item.sources_by_pred.get(pred)
            if spec is None:
                uses.append(item.target)
            elif spec.kind == "rmov":
                uses.append(spec.payload)
            elif spec.kind in ("ld", "fpaddi"):
                uses.append(spec.fp)
        return uses

    def _pending_counts(self, mblock):
        pending = {}

        def count(value):
            if value is not ZERO:
                pending[value] = pending.get(value, 0) + 1

        for inst in mblock.instrs:
            for src in inst.srcs:
                count(src)
        for succ in mblock.successors():
            if succ.is_merge:
                for value in self._refresh_uses(mblock, succ):
                    count(value)
        return pending

    def _live_out(self, mblock):
        out = set()
        for succ in mblock.successors():
            if succ.is_merge:
                continue  # refresh uses already counted in pending
            out |= self.rc_live_in[succ]
        return out

    # -- main -------------------------------------------------------------------

    def run(self):
        self._compute_rc_live_in()
        order = self._reverse_postorder()
        emitted = {}
        for mblock in order:
            emitted[mblock] = self._walk_block(mblock)
        for mblock in order:
            mblock.instrs = emitted[mblock]
        self.mfunc.blocks = order
        return self.mfunc

    def _reverse_postorder(self):
        seen = {self.mfunc.entry}
        order = []
        stack = [(self.mfunc.entry, iter(self.mfunc.entry.successors()))]
        while stack:
            block, children = stack[-1]
            advanced = False
            for child in children:
                if child not in seen:
                    seen.add(child)
                    stack.append((child, iter(child.successors())))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()
        return list(reversed(order))

    def _initial_ages(self, mblock):
        if mblock is self.mfunc.entry:
            ages = {self.mfunc.retaddr: 1}
            n = self.mfunc.num_args
            for index, arg in enumerate(self.mfunc.arg_values):
                ages[arg] = 1 + (n - index)
            return ages
        if mblock.is_merge:
            items = mblock.refresh_list
            n = len(items)
            return {item.target: n - k + 1 for k, item in enumerate(items)}
        if mblock not in self.entry_ages:
            raise CompileError(
                f"{self.mfunc.name}/{mblock.label}: no predecessor processed "
                "before this single-predecessor block (irreducible CFG?)"
            )
        return self.entry_ages[mblock]

    def _walk_block(self, mblock):
        ages = dict(self._initial_ages(mblock))
        pending = self._pending_counts(mblock)
        live_out = self._live_out(mblock)
        out = []

        def needed_values():
            return [
                v
                for v in ages
                if pending.get(v, 0) > 0 or v in live_out
            ]

        def bound_check(margin=1):
            """Relay-refresh any needed value whose age is within ``margin``
            of the ISA maximum.  Ages are pairwise distinct (each is the
            distance to a distinct producing instruction), so the steady
            state of n live values occupies ages {1..n}; feasibility
            requires n to stay below the relay threshold.
            """
            while True:
                needed = needed_values()
                threshold = self.max_distance - margin
                if len(needed) >= threshold:
                    raise CompileError(
                        f"{self.mfunc.name}/{mblock.label}: {len(needed)} live "
                        f"values cannot fit max distance {self.max_distance}"
                    )
                stale = [v for v in needed if ages[v] >= threshold]
                if not stale:
                    return
                victim = max(stale, key=lambda v: ages[v])
                relay = MInst("RMOV", [victim], comment="bounding relay")
                self._emit(relay, ages, pending, out, target=victim, consume=False)
                self.rmov_relays += 1

        index = 0
        instrs = mblock.instrs
        while index < len(instrs):
            inst = instrs[index]
            if inst.op == "J" and inst.target.is_merge:
                self._emit_refreshes(mblock, inst.target, ages, pending, out, bound_check)
            bound_check()
            self._emit(inst, ages, pending, out)
            if inst.op == "JAL":
                retval = getattr(inst, "retval_value", None)
                ages.clear()
                if retval is not None:
                    ages[retval] = 2
            if inst.op in ("BEZ", "BNZ", "J") and not inst.target.is_merge:
                self.entry_ages[inst.target] = dict(ages)
            index += 1
        return out

    def _emit(self, inst, ages, pending, out, target=None, consume=True):
        dists = []
        for src in inst.srcs:
            if src is ZERO:
                dists.append(0)
                continue
            age = ages.get(src)
            if age is None:
                raise CompileError(
                    f"{self.mfunc.name}: {inst!r} uses {src!r} which has no "
                    "age here (value not carried to this point)"
                )
            if age > self.max_distance:
                raise CompileError(
                    f"{self.mfunc.name}: {inst!r} needs distance {age} > "
                    f"max {self.max_distance} (bounding failed)"
                )
            dists.append(age)
            if consume and pending.get(src, 0) > 0:
                pending[src] -= 1
        inst.dists = dists
        inst.product_value = target if target is not None else inst
        for value in ages:
            ages[value] += 1
        ages[target if target is not None else inst] = 1
        out.append(inst)

    def _emit_refreshes(self, pred, merge, ages, pending, out, bound_check):
        """Emit the merge's refresh sequence in ``pred``.

        The sequence has *parallel copy* semantics: every slot reads the
        value its source had at the start of the sequence, even when an
        earlier slot re-produces that same logical value (a loop's
        ``prev = node`` swaps through the same phis).  Source distances are
        therefore resolved against a snapshot of the age map, offset by the
        slot position; age rebinding happens only after the full sequence.
        """
        items = merge.refresh_list
        if not items:
            return
        # Pre-relay so every source stays encodable at its slot position:
        # slot k reads its source at (start age + k).
        bound_check(margin=len(items) + 1)
        start_ages = dict(ages)
        emitted = []
        for position, item in enumerate(items):
            sunk = item.sunk_def_by_pred.get(pred)
            if sunk is not None:
                inst = sunk
            else:
                spec = item.sources_by_pred.get(pred)
                if spec is None or (
                    spec.kind == "rmov" and spec.payload is item.target
                ):
                    inst = MInst("RMOV", [item.target])
                elif spec.kind == "rmov":
                    inst = MInst("RMOV", [spec.payload])
                elif spec.kind == "addi":
                    inst = MInst("ADDI", [ZERO], imm=spec.payload)
                elif spec.kind == "ld":
                    inst = MInst("LD", [spec.fp], imm=spec.payload * 4)
                elif spec.kind == "fpaddi":
                    inst = MInst("ADDI", [spec.fp], imm=spec.payload)
                else:  # pragma: no cover
                    raise CompileError(f"bad refresh kind {spec.kind}")
            dists = []
            for src in inst.srcs:
                if src is ZERO:
                    dists.append(0)
                    continue
                base = start_ages.get(src)
                if base is None:
                    raise CompileError(
                        f"{self.mfunc.name}: refresh of {item.target!r} in "
                        f"{pred.label} uses {src!r} which has no age here"
                    )
                distance = base + position
                if distance > self.max_distance:
                    raise CompileError(
                        f"{self.mfunc.name}: refresh distance {distance} > "
                        f"max {self.max_distance} in {pred.label}"
                    )
                dists.append(distance)
                if pending.get(src, 0) > 0:
                    pending[src] -= 1
            inst.dists = dists
            inst.product_value = item.target
            out.append(inst)
            emitted.append(item.target)
        count = len(items)
        for value in ages:
            ages[value] += count
        for position, target in enumerate(emitted):
            ages[target] = count - position


# ---------------------------------------------------------------------------
# Final emission to assembly-level instructions
# ---------------------------------------------------------------------------


def emit_assembly(mfunc):
    """Convert a distance-resolved MFunction into assembler items.

    Returns ``(items, manifest)``.  The manifest is the static verifier's
    ground truth (:mod:`repro.analysis`): for every emitted instruction, the
    logical-value uid it (re)produces and the uid each source distance is
    supposed to name; plus the function's calling-convention entry ages.
    """
    items = []
    manifest_instrs = []
    for index, mblock in enumerate(mfunc.blocks):
        if index == 0:
            if mblock.label != mfunc.name:
                items.append(("label", mfunc.name))
            items.append(("label", mblock.label))
        else:
            items.append(("label", mblock.label))
        for inst in mblock.instrs:
            items.append(("instr", _to_sinstr(inst)))
            manifest_instrs.append(_manifest_entry(inst))
    # Drop a duplicate entry label if present.
    if (
        len(items) >= 2
        and items[0] == ("label", mfunc.name)
        and items[1] == ("label", mfunc.name)
    ):
        items.pop(0)
    entry_ages = {1: mfunc.retaddr.uid}
    n = mfunc.num_args
    for index, arg in enumerate(mfunc.arg_values):
        entry_ages[1 + (n - index)] = arg.uid
    manifest = {
        "instrs": manifest_instrs,
        "function": {
            "name": mfunc.name,
            "num_args": mfunc.num_args,
            "returns_value": mfunc.returns_value,
            "entry_ages": entry_ages,
        },
    }
    return items, manifest


def _manifest_entry(inst):
    product = getattr(inst, "product_value", None) or inst
    retval = getattr(inst, "retval_value", None)
    return {
        "product": product.uid,
        "srcs": tuple(None if s is ZERO else s.uid for s in inst.srcs),
        "retval": retval.uid if retval is not None else None,
    }


def _to_sinstr(inst):
    if inst.dists is None:
        raise CompileError(f"instruction {inst!r} has no resolved distances")
    label = None
    imm = inst.imm
    if inst.op in ("BEZ", "BNZ", "J"):
        label = inst.target.label
        imm = None
    elif inst.op == "JAL":
        label = inst.target  # callee entry label (function name)
        imm = None
    return SInstr(inst.op, inst.dists, imm, label)
