"""STRAIGHT code generation (paper §IV).

Pipeline, per function:

1. CFG normalization: split critical edges, guarantee a predecessor-free
   entry block (so merge refresh sequences are unconditionally placeable).
2. Spill analysis (:mod:`.frame`): values live across calls go to the stack
   frame (the callee's dynamic length makes their distances unknowable);
   with RE+ enabled, values live *through* a loop but unused inside it are
   demoted to the frame too (§IV-D / Fig. 10(c)).
3. Instruction selection (:mod:`.isel`): IR ops -> machine instructions with
   *logical value* operands; the Fig. 5/6 calling convention (argument
   producers immediately before JAL, return-value producer before JR,
   SPADD-managed frames, SPADD 0 re-materialization of the frame pointer).
4. RE+ producer sinking (:mod:`.redundancy`): pure producers whose results
   are unused before the block tail replace their RMOV refresh slots
   (Fig. 10(b)).
5. Distance fixing + bounding (:mod:`.distance`): merge refresh sequences
   pin every cross-block value to a path-independent distance; a forward
   age walk assigns every operand's distance and inserts relay RMOVs when a
   live value approaches the ISA's maximum distance (§IV-C2, §IV-C3).
"""

from repro.compiler.straight_backend.driver import compile_to_straight

__all__ = ["compile_to_straight"]
