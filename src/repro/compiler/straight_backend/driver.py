"""STRAIGHT backend driver: orchestrates the per-function pipeline."""

from repro.common.errors import CompileError
from repro.ir.analysis.liveness import compute_liveness
from repro.straight.isa import MAX_DISTANCE
from repro.straight.assembler import AsmUnit
from repro.straight.linker import link_program, startup_stub
from repro.compiler.common import (
    BaseCompilation,
    compile_module_functions,
    prepare_function,
)
from repro.compiler.data_layout import DataLayout
from repro.compiler.straight_backend.frame import build_frame_info
from repro.compiler.straight_backend.isel import StraightISel
from repro.compiler.straight_backend.distance import (
    build_refresh_lists,
    DistanceWalker,
    emit_assembly,
)
from repro.compiler.straight_backend.redundancy import sink_producers


class StraightCompilation(BaseCompilation):
    """The result of compiling a module to STRAIGHT assembly."""

    def __init__(self, module, units, layout, max_distance, stats):
        super().__init__(module, units, layout, stats)
        self.max_distance = max_distance

    def link(self):
        """Link with the startup stub into an executable program image."""
        return link_program(
            [startup_stub()] + self.units,
            data_words=self.layout.data_words(),
            data_base=self.layout.data_base,
            max_distance=self.max_distance,
        )

    def verify(self, lint=False):
        """Statically verify the linked image (see :mod:`repro.analysis`).

        Returns the diagnostic :class:`~repro.analysis.Report`.  This is the
        verify-after-compile hook: the linked binary plus the backend's
        producer manifest are checked over every CFG path, independently of
        the distance walk that emitted them.
        """
        from repro.analysis import verify_program

        return verify_program(self.link(), lint=lint)


def compile_to_straight(
    module,
    max_distance=MAX_DISTANCE,
    redundancy_elimination=True,
    layout=None,
    enable_sinking=None,
    enable_demotion=None,
    verify=False,
):
    """Compile an SSA IR module to STRAIGHT assembly.

    ``redundancy_elimination`` selects between the paper's two binaries:
    ``False`` is STRAIGHT RAW (the basic §IV-A..C algorithm), ``True`` adds
    the §IV-D RE+ optimizations (loop demotion + producer sinking).
    ``enable_sinking``/``enable_demotion`` override the individual RE+
    mechanisms for ablation studies (default: follow
    ``redundancy_elimination``).
    """
    layout = layout or DataLayout(module)
    sinking = redundancy_elimination if enable_sinking is None else enable_sinking
    demotion = (
        redundancy_elimination if enable_demotion is None else enable_demotion
    )
    units, stats = compile_module_functions(
        module,
        lambda func: _compile_function(
            func, module, layout, max_distance, sinking, demotion
        ),
    )
    compilation = StraightCompilation(module, units, layout, max_distance, stats)
    if verify:
        report = compilation.verify()
        if report.has_errors():
            raise CompileError(
                "static verification failed:\n" + report.text(max_items=20)
            )
    return compilation


def _compile_function(func, module, layout, max_distance, sinking, demotion):
    prepare_function(func)
    liveness = compute_liveness(func)
    frame = build_frame_info(func, optimize=demotion)
    isel = StraightISel(func, layout, frame)
    mfunc = isel.run()
    build_refresh_lists(mfunc, func, liveness, frame, isel.value_map, layout)
    sunk = sink_producers(mfunc) if sinking else 0
    walker = DistanceWalker(
        mfunc, func, liveness, frame, isel.value_map, max_distance
    )
    walker.run()
    items, manifest = emit_assembly(mfunc)
    unit = AsmUnit(items)
    unit.verify_manifest = manifest
    instr_count = len(unit.instructions())
    rmov_count = sum(1 for i in unit.instructions() if i.mnemonic == "RMOV")
    func_stats = {
        "instructions": instr_count,
        "rmovs": rmov_count,
        "bounding_relays": walker.rmov_relays,
        "sunk_producers": sunk,
        "frame_words": frame.frame_words,
        "spilled_values": len(frame.spilled),
    }
    return unit, func_stats
