"""RE+ redundancy elimination: producer sinking (paper §IV-D, Fig. 10(b)).

A merge refresh slot normally holds ``RMOV [v]``.  When ``v``'s defining
instruction sits in the same predecessor, is a pure ALU operation, and its
result is consumed *only* by that refresh slot, the definition itself can be
moved into the slot: it then "generates the value and adjusts the distance at
the same time" and the RMOV disappears.  (The other half of RE+ — demoting
loop-through values to the stack frame — runs earlier, in
:func:`repro.compiler.straight_backend.frame.build_frame_info`.)
"""

from repro.compiler.straight_backend.machine_ir import MInst, ZERO


def sink_producers(mfunc):
    """Apply producer sinking to every merge block; returns RMOVs removed."""
    removed = 0
    for merge in mfunc.blocks:
        if not merge.is_merge:
            continue
        for pred in merge.preds:
            removed += _sink_into_pred(merge, pred)
    return removed


def _sink_into_pred(merge, pred):
    removed = 0
    for item in merge.refresh_list:
        spec = item.sources_by_pred.get(pred)
        if spec is None:
            source = item.target
        elif spec.kind == "rmov":
            source = spec.payload
        else:
            continue  # ADDI/LD/SPADD refreshes are already single producers
        if not isinstance(source, MInst) or not source.is_pure_alu():
            continue
        if source not in pred.instrs:
            continue
        if _refresh_use_count(merge, pred, source) != 1:
            continue
        def_index = pred.instrs.index(source)
        tail = pred.instrs[def_index + 1 :]
        if any(inst.op == "JAL" for inst in tail):
            continue  # ages die at calls; cannot move the producer across
        if any(source in inst.srcs for inst in tail):
            continue  # still consumed in the block after its definition
        pred.instrs.pop(def_index)
        item.sunk_def_by_pred[pred] = source
        removed += 1
    return removed


def _refresh_use_count(merge, pred, value):
    """How many of ``merge``'s refresh slots consume ``value`` in ``pred``."""
    count = 0
    for item in merge.refresh_list:
        if pred in item.sunk_def_by_pred:
            count += sum(
                1 for s in item.sunk_def_by_pred[pred].srcs if s is value
            )
            continue
        spec = item.sources_by_pred.get(pred)
        if spec is None:
            if item.target is value:
                count += 1
        elif spec.kind == "rmov" and spec.payload is value:
            count += 1
        elif spec.kind in ("ld", "fpaddi") and spec.fp is value:
            count += 1
    return count
