"""Stack frame construction and spill analysis for the STRAIGHT backend.

Why spilling exists at all in STRAIGHT: a distance is a *dynamic* instruction
count, and the number of instructions a callee executes is unknowable at
compile time, so **no value can be carried in a register across a call** —
everything live across a call site goes through the stack frame (the paper's
calling convention stores "alive variables ... in the stack frame using the
SP before the function call", §IV-B).

The RE+ mode additionally demotes values that are live *through* a loop but
never used inside it (the paper's Fig. 10(c) `_RETADDR` example): carrying
them in registers would cost one RMOV per live value per iteration.
"""

from repro.ir.values import Argument
from repro.ir.instructions import Instruction, Alloca, Call, Phi, Ret
from repro.ir.analysis.liveness import compute_liveness
from repro.ir.analysis.loops import find_natural_loops

#: Marker key used for the return-address slot in FrameInfo maps.
RETADDR_KEY = "$retaddr"


class FrameInfo:
    """Spill decisions and slot offsets (in words from the adjusted SP)."""

    def __init__(self):
        self.spilled = set()  # IR values (Instruction/Argument) with slots
        self.retaddr_spilled = False
        self.slots = {}  # IR value or RETADDR_KEY -> word offset
        self.alloca_offsets = {}  # Alloca -> word offset
        self.frame_words = 0
        self.makes_calls = False

    def slot_of(self, value):
        return self.slots[value]

    def byte_offset_of_alloca(self, alloca):
        return self.alloca_offsets[alloca] * 4


def build_frame_info(func, optimize=False):
    """Analyze ``func`` and return its :class:`FrameInfo`.

    ``optimize=True`` enables the RE+ loop demotion (spill values live
    through a loop that never uses them).
    """
    info = FrameInfo()
    liveness = compute_liveness(func)

    _spill_call_crossing(func, liveness, info)
    if optimize:
        _demote_loop_through_values(func, liveness, info)
    _assign_slots(func, info)
    return info


def _spill_call_crossing(func, liveness, info):
    """Values live across any call site must live in the frame."""
    for block in func.blocks:
        calls = [i for i in block.instructions if isinstance(i, Call)]
        if calls:
            info.makes_calls = True
        live = set(liveness.live_out[block])
        # Phi uses at the end of this block count as live at block exit.
        for succ in block.successors():
            for phi in succ.phis():
                incoming = phi.incoming_for(block)
                if isinstance(incoming, (Instruction, Argument)):
                    live.add(incoming)
        for instr in reversed(block.instructions):
            if isinstance(instr, Call):
                crossing = {v for v in live if v is not instr}
                info.spilled |= {
                    v for v in crossing if not isinstance(v, Alloca)
                }
            live.discard(instr)
            for op in instr.operands:
                if isinstance(op, (Instruction, Argument)):
                    live.add(op)
    if info.makes_calls:
        info.retaddr_spilled = True


def _demote_loop_through_values(func, liveness, info):
    """RE+ §IV-D: spill values live through a loop but unused inside it."""
    loops = find_natural_loops(func)
    for loop in loops:
        used_in_loop = set()
        defined_in_loop = set()
        has_return = False
        for block in loop.body:
            for instr in block.instructions:
                if isinstance(instr, Ret):
                    has_return = True
                if isinstance(instr, Phi):
                    defined_in_loop.add(instr)
                    for value, pred in instr.incomings():
                        if pred in loop.body:
                            used_in_loop.add(value)
                    continue
                defined_in_loop.add(instr)
                used_in_loop.update(
                    op
                    for op in instr.operands
                    if isinstance(op, (Instruction, Argument))
                )
        use_counts = _static_use_counts(func)
        for value in liveness.live_in[loop.header]:
            if (
                value not in used_in_loop
                and value not in defined_in_loop
                and not isinstance(value, Alloca)
                # Only demote rarely-read values (the paper's _RETADDR
                # archetype: "variables not read in the near future").
                # Heavily-used values pay a 4-cycle reload per use, which
                # can cost more than the RMOVs the demotion saves.
                and use_counts.get(value, 0) <= 2
            ):
                info.spilled.add(value)
        # The return address behaves like a live-through value for any loop
        # that does not itself return (the paper's Fig. 10(c) _RETADDR case).
        if not has_return:
            info.retaddr_spilled = True


def _static_use_counts(func):
    """How many operand slots reference each value, function-wide."""
    counts = {}
    for instr in func.instructions():
        for op in instr.operands:
            counts[op] = counts.get(op, 0) + 1
    return counts


def _assign_slots(func, info):
    """Assign word offsets: spilled values first, then allocas."""
    offset = 0
    if info.retaddr_spilled:
        info.slots[RETADDR_KEY] = offset
        offset += 1
    for value in sorted(info.spilled, key=_stable_key(func)):
        info.slots[value] = offset
        offset += 1
    for block in func.blocks:
        for instr in block.instructions:
            if isinstance(instr, Alloca):
                info.alloca_offsets[instr] = offset
                offset += instr.size_words
    info.frame_words = offset


def _stable_key(func):
    """Deterministic ordering key for IR values (position in the function)."""
    positions = {}
    for arg in func.params:
        positions[arg] = (0, arg.index)
    for block_index, block in enumerate(func.blocks):
        for instr_index, instr in enumerate(block.instructions):
            positions[instr] = (1 + block_index, instr_index)

    def key(value):
        return positions.get(value, (10**9, id(value)))

    return key
