"""Instruction selection: SSA IR -> STRAIGHT machine IR (§IV-C1).

Operands at this stage are logical values (:mod:`.machine_ir`); the distance
walk assigns numeric distances later.  This pass implements:

* operation translation (with immediate forms and constant materialization),
* the calling convention: argument producers packed immediately before JAL,
  the return-value producer before JR, SPADD-managed frames (Fig. 5/6),
* spill stores after definitions and reloads before uses for frame-resident
  values, with the frame pointer re-materialized per block (``SPADD 0`` —
  SP is the one persistent register, so the frame base is always
  recoverable; this is how the paper's Fig. 10(c) reloads work after calls).
"""

from repro.common.bitops import to_signed, fits_signed
from repro.common.errors import CompileError
from repro.ir.values import ConstantInt, Argument, GlobalVariable, UndefValue
from repro.ir.instructions import (
    BinOp,
    ICmp,
    Load,
    Store,
    Alloca,
    GetElementPtr,
    Call,
    Ret,
    Br,
    CondBr,
    Phi,
    Output,
    Select,
)
from repro.compiler.common.isel import (
    BINOP_TABLE as _BINOP_TABLE,
    COMMUTATIVE_BINOPS as _COMMUTATIVE,
    build_block_map,
)
from repro.compiler.straight_backend.machine_ir import (
    MInst,
    MFunction,
    MValue,
    ZERO,
    RetValValue,
)
from repro.compiler.straight_backend.frame import RETADDR_KEY

#: Word offsets that fit the ST instruction's 5-bit scaled immediate.
_ST_IMM_MAX = 15
_ST_IMM_MIN = -16


class PhiValue(MValue):
    """The logical value of an IR phi (produced by predecessor refreshes)."""

    def __init__(self, phi):
        super().__init__()
        self.phi = phi

    def __repr__(self):
        return f"$phi.{self.phi.name}"


class StraightISel:
    """Translates one IR function into an :class:`MFunction`."""

    def __init__(self, func, layout, frame_info, entry_label=None):
        self.func = func
        self.layout = layout
        self.frame = frame_info
        self.mfunc = MFunction(
            entry_label or func.name,
            len(func.params),
            not func.return_type.is_void(),
        )
        self.mfunc.frame_words = frame_info.frame_words
        self.mfunc.makes_calls = frame_info.makes_calls
        self.block_map = {}
        self.value_map = {}  # IR value -> logical MValue (register-carried)
        self.current = None
        self.block_fp = None  # current block's frame-pointer logical value

    # -- plumbing -----------------------------------------------------------

    def emit(self, op, srcs=(), imm=None, target=None, comment=""):
        inst = MInst(op, srcs, imm, target, comment)
        self.current.append(inst)
        return inst

    def run(self):
        self.block_map = build_block_map(self.func, self.mfunc)
        for arg, mval in zip(self.func.params, self.mfunc.arg_values):
            mval.name = arg.name
            self.value_map[arg] = mval
        for block in self.func.blocks:
            for phi in block.phis():
                self.value_map[phi] = PhiValue(phi)
        for index, block in enumerate(self.func.blocks):
            self.select_block(block, is_entry=(index == 0))
        self.mfunc.compute_preds()
        # Record the block-local frame pointer for the refresh builder.
        return self.mfunc

    # -- frame access --------------------------------------------------------

    def fp(self):
        """The current block's frame-pointer value, materializing if needed."""
        if self.frame.frame_words == 0:
            raise CompileError(
                f"{self.func.name}: frame access with an empty frame"
            )
        if self.block_fp is None:
            self.block_fp = self.emit("SPADD", imm=0, comment="remat fp")
        return self.block_fp

    def emit_frame_store(self, value, slot_words, comment=""):
        fp = self.fp()
        if _ST_IMM_MIN <= slot_words <= _ST_IMM_MAX:
            return self.emit("ST", [value, fp], imm=slot_words, comment=comment)
        addr = self.emit("ADDI", [fp], imm=slot_words * 4)
        return self.emit("ST", [value, addr], imm=0, comment=comment)

    def emit_frame_load(self, slot_words, comment=""):
        fp = self.fp()
        return self.emit("LD", [fp], imm=slot_words * 4, comment=comment)

    # -- operand resolution ----------------------------------------------------

    def materialize_const(self, value, comment=""):
        signed = to_signed(value)
        if fits_signed(signed, 15):
            return self.emit("ADDI", [ZERO], imm=signed, comment=comment)
        hi = (value >> 12) & 0xFFFFF
        lo = value & 0xFFF
        inst = self.emit("LUI", imm=hi, comment=comment)
        if lo:
            inst = self.emit("ORI", [inst], imm=lo, comment=comment)
        return inst

    def resolve(self, ir_value, comment=""):
        """Produce a usable logical value for ``ir_value`` at this point."""
        if isinstance(ir_value, ConstantInt):
            return self.materialize_const(ir_value.value, comment)
        if isinstance(ir_value, UndefValue):
            return ZERO
        if isinstance(ir_value, GlobalVariable):
            return self.materialize_const(
                self.layout.address_of(ir_value.name), comment=f"@{ir_value.name}"
            )
        if isinstance(ir_value, Alloca):
            offset = self.frame.byte_offset_of_alloca(ir_value)
            return self.emit(
                "ADDI", [self.fp()], imm=offset, comment=f"&{ir_value.name}"
            )
        if ir_value in self.frame.spilled:
            return self.emit_frame_load(
                self.frame.slot_of(ir_value), comment=f"reload {ir_value.short()}"
            )
        mapped = self.value_map.get(ir_value)
        if mapped is None:
            raise CompileError(
                f"{self.func.name}: no machine value for {ir_value!r}"
            )
        return mapped

    def define(self, ir_value, mvalue):
        """Record the producer of ``ir_value``; add a spill store if framed."""
        self.value_map[ir_value] = mvalue
        if ir_value in self.frame.spilled:
            self.emit_frame_store(
                mvalue,
                self.frame.slot_of(ir_value),
                comment=f"spill {ir_value.short()}",
            )

    # -- block selection ----------------------------------------------------------

    def select_block(self, block, is_entry):
        self.current = self.block_map[block]
        self.block_fp = None
        if is_entry:
            self._emit_prologue()
        for phi in block.phis():
            if phi in self.frame.spilled:
                self.emit_frame_store(
                    self.value_map[phi],
                    self.frame.slot_of(phi),
                    comment=f"spill {phi.short()}",
                )
        for instr in block.non_phi_instructions():
            self.select_instruction(instr)
        self.current.block_fp = self.block_fp

    def _emit_prologue(self):
        if self.frame.frame_words > 0:
            self.block_fp = self.emit(
                "SPADD", imm=-self.frame.frame_words * 4, comment="frame"
            )
        if self.frame.retaddr_spilled:
            self.emit_frame_store(
                self.mfunc.retaddr,
                self.frame.slots[RETADDR_KEY],
                comment="spill retaddr",
            )
        for arg, mval in zip(self.func.params, self.mfunc.arg_values):
            if arg in self.frame.spilled:
                self.emit_frame_store(
                    mval, self.frame.slot_of(arg), comment=f"spill {arg.name}"
                )

    # -- per-instruction selection ---------------------------------------------

    def select_instruction(self, instr):
        if isinstance(instr, BinOp):
            self.define(instr, self._select_binop(instr))
        elif isinstance(instr, ICmp):
            self.define(instr, self._select_icmp(instr))
        elif isinstance(instr, Select):
            self.define(instr, self._select_select(instr))
        elif isinstance(instr, GetElementPtr):
            self.define(instr, self._select_gep(instr))
        elif isinstance(instr, Load):
            ptr = self.resolve(instr.ptr)
            self.define(instr, self.emit("LD", [ptr], imm=0))
        elif isinstance(instr, Store):
            value = self.resolve(instr.value)
            ptr = self.resolve(instr.ptr)
            self.emit("ST", [value, ptr], imm=0)
        elif isinstance(instr, Alloca):
            pass  # materialized at each use
        elif isinstance(instr, Output):
            self.emit("OUT", [self.resolve(instr.value)])
        elif isinstance(instr, Call):
            self._select_call(instr)
        elif isinstance(instr, Ret):
            self._select_ret(instr)
        elif isinstance(instr, Br):
            self.emit("J", target=self.block_map[instr.target])
        elif isinstance(instr, CondBr):
            cond = self.resolve(instr.cond)
            self.emit("BNZ", [cond], target=self.block_map[instr.iftrue])
            self.emit("J", target=self.block_map[instr.iffalse])
        else:
            raise CompileError(
                f"{self.func.name}: cannot select {instr!r}"
            )

    def _select_binop(self, instr):
        op = instr.opcode
        reg_op, imm_op = _BINOP_TABLE[op]
        lhs, rhs = instr.lhs, instr.rhs
        if isinstance(lhs, ConstantInt) and op in _COMMUTATIVE:
            lhs, rhs = rhs, lhs
        if isinstance(rhs, ConstantInt):
            const = to_signed(rhs.value)
            if op == "sub" and fits_signed(-const, 15):
                return self.emit("ADDI", [self.resolve(lhs)], imm=-const)
            if imm_op is not None:
                if imm_op in ("SLLI", "SRLI", "SRAI"):
                    return self.emit(
                        imm_op, [self.resolve(lhs)], imm=rhs.value & 31
                    )
                if fits_signed(const, 15):
                    return self.emit(imm_op, [self.resolve(lhs)], imm=const)
        return self.emit(reg_op, [self.resolve(lhs), self.resolve(rhs)])

    def _select_icmp(self, instr):
        pred = instr.pred
        lhs, rhs = instr.lhs, instr.rhs
        if pred in ("sgt", "ugt", "sle", "ule"):
            # a > b == b < a;  a <= b == !(b < a)
            lhs, rhs = rhs, lhs
            pred = {"sgt": "slt", "ugt": "ult", "sle": "sge", "ule": "uge"}[pred]
        if pred in ("slt", "ult"):
            return self._emit_setlt(pred, lhs, rhs)
        if pred in ("sge", "uge"):
            lt = self._emit_setlt("slt" if pred == "sge" else "ult", lhs, rhs)
            return self.emit("XORI", [lt], imm=1)
        if pred == "eq":
            diff = self._emit_diff(lhs, rhs)
            return self.emit("SLTUI", [diff], imm=1)
        if pred == "ne":
            diff = self._emit_diff(lhs, rhs)
            return self.emit("SLTU", [ZERO, diff])
        raise CompileError(f"unknown icmp predicate {pred!r}")

    def _emit_setlt(self, pred, lhs, rhs):
        mnemonic = "SLT" if pred == "slt" else "SLTU"
        if isinstance(rhs, ConstantInt) and fits_signed(to_signed(rhs.value), 15):
            return self.emit(
                mnemonic + "I", [self.resolve(lhs)], imm=to_signed(rhs.value)
            )
        return self.emit(mnemonic, [self.resolve(lhs), self.resolve(rhs)])

    def _emit_diff(self, lhs, rhs):
        """x ^ y (or just x when y == 0), for equality tests."""
        if isinstance(rhs, ConstantInt) and rhs.value == 0:
            return self.resolve(lhs)
        if isinstance(lhs, ConstantInt) and lhs.value == 0:
            return self.resolve(rhs)
        return self.emit("XOR", [self.resolve(lhs), self.resolve(rhs)])

    def _select_select(self, instr):
        cond = self.resolve(instr.cond)
        nz = self.emit("SLTU", [ZERO, cond])
        mask = self.emit("SUB", [ZERO, nz])  # 0 or -1
        a = self.resolve(instr.operands[1])
        a_side = self.emit("AND", [a, mask])
        inv = self.emit("XORI", [mask], imm=-1)
        b = self.resolve(instr.operands[2])
        b_side = self.emit("AND", [b, inv])
        return self.emit("OR", [a_side, b_side])

    def _select_gep(self, instr):
        base_ir, index_ir = instr.base, instr.index
        if isinstance(index_ir, ConstantInt):
            byte_off = to_signed(index_ir.value) * 4
            if isinstance(base_ir, Alloca):
                total = self.frame.byte_offset_of_alloca(base_ir) + byte_off
                if fits_signed(total, 15):
                    return self.emit("ADDI", [self.fp()], imm=total)
            base = self.resolve(base_ir)
            if fits_signed(byte_off, 15):
                return self.emit("ADDI", [base], imm=byte_off)
            offset = self.materialize_const(byte_off & 0xFFFFFFFF)
            return self.emit("ADD", [base, offset])
        index = self.resolve(index_ir)
        scaled = self.emit("SLLI", [index], imm=2)
        base = self.resolve(base_ir)
        return self.emit("ADD", [base, scaled])

    # -- calls and returns --------------------------------------------------------

    def _producer_plan(self, ir_value):
        """Classify how to emit a one-instruction producer for ``ir_value``.

        Returns ``(kind, payload)`` where kind is 'addi' (small constant),
        'ld' (frame reload), 'fpaddi' (alloca address), or 'rmov' (an
        already-available logical value, possibly just materialized).
        """
        if isinstance(ir_value, ConstantInt):
            signed = to_signed(ir_value.value)
            if fits_signed(signed, 15):
                return ("addi", signed)
            return ("rmov", self.materialize_const(ir_value.value))
        if isinstance(ir_value, UndefValue):
            return ("addi", 0)
        if isinstance(ir_value, GlobalVariable):
            return (
                "rmov",
                self.materialize_const(self.layout.address_of(ir_value.name)),
            )
        if isinstance(ir_value, Alloca):
            return ("fpaddi", self.frame.byte_offset_of_alloca(ir_value))
        if ir_value in self.frame.spilled:
            return ("ld", self.frame.slot_of(ir_value))
        mapped = self.value_map.get(ir_value)
        if mapped is None:
            raise CompileError(
                f"{self.func.name}: no machine value for call operand "
                f"{ir_value!r}"
            )
        return ("rmov", mapped)

    def _emit_producer(self, plan, comment=""):
        kind, payload = plan
        if kind == "addi":
            return self.emit("ADDI", [ZERO], imm=payload, comment=comment)
        if kind == "ld":
            return self.emit_frame_load(payload, comment=comment)
        if kind == "fpaddi":
            return self.emit("ADDI", [self.fp()], imm=payload, comment=comment)
        return self.emit("RMOV", [payload], comment=comment)

    def _select_call(self, instr):
        callee = instr.callee_name()
        if callee == "__halt":
            self.emit("HALT")
            return
        # Phase 1 (prerequisites): materializations and the frame pointer,
        # so that phase 2 can emit exactly one producer per argument.
        plans = []
        needs_fp = any(
            isinstance(a, Alloca) or a in self.frame.spilled
            for a in instr.operands
        )
        if needs_fp:
            self.fp()
        for arg in instr.operands:
            plans.append(self._producer_plan(arg))
        # Phase 2: arg0 producer first ... argN-1 immediately before JAL
        # (Fig. 5: callee sees argN-1 at distance 2, arg0 at N+1).
        for index, plan in enumerate(plans):
            self._emit_producer(plan, comment=f"arg{index}")
        jal = self.emit("JAL", target=callee)
        self.mfunc.makes_calls = True
        self.block_fp = None  # callee length unknown: all ages die here
        retval = RetValValue(jal)
        jal.retval_value = retval
        if not instr.type.is_void():
            self.define(instr, retval)

    def _select_ret(self, instr):
        # Prerequisites run before the SPADD that pops the frame (frame
        # reloads must use the still-adjusted SP).
        retval_plan = None
        if instr.value is not None:
            retval_plan = self._producer_plan(instr.value)
            if retval_plan[0] == "ld":
                retval_plan = ("rmov", self.emit_frame_load(retval_plan[1]))
            elif retval_plan[0] == "fpaddi":
                retval_plan = (
                    "rmov",
                    self.emit("ADDI", [self.fp()], imm=retval_plan[1]),
                )
        if self.frame.retaddr_spilled:
            jr_src = self.emit_frame_load(
                self.frame.slots[RETADDR_KEY], comment="reload retaddr"
            )
        else:
            jr_src = self.mfunc.retaddr
        if self.frame.frame_words > 0:
            self.emit("SPADD", imm=self.frame.frame_words * 4, comment="pop frame")
        if retval_plan is not None:
            self._emit_producer(retval_plan, comment="retval")
        self.emit("JR", [jr_src])
