"""Backend machine IR for STRAIGHT code generation.

Between instruction selection and the distance walk, operands are *logical
values*, not distances: a logical value is the machine instruction that
produces it, or one of the calling-convention markers (arguments, the return
address, a call's return value).  RMOVs inserted later (merge refreshes,
bounding relays) re-produce an existing logical value, which is how one
logical value can have many physical producers along a path while consumers
stay oblivious — the distance walk resolves each use against the *nearest*
producer via the age map.
"""

from repro.common.errors import CompileError
from repro.compiler.common.machine_ir import MachineBlockBase, MachineFunctionBase


class MValue:
    """Base class of logical values.

    Every logical value gets a creation-order ``uid`` so refresh lists and
    live sets can be ordered deterministically (compilation must be
    reproducible for the golden-code tests).
    """

    _next_uid = 0

    def __init__(self):
        self.uid = MValue._next_uid
        MValue._next_uid += 1

    def describe(self):
        return repr(self)


class ZeroValue(MValue):
    """The zero register (distance 0)."""

    def __init__(self):
        super().__init__()

    def __repr__(self):
        return "$zero"


#: Singleton zero value.
ZERO = ZeroValue()


class ArgValue(MValue):
    """The ``index``-th incoming argument (entry age ``nargs - index + 1``)."""

    def __init__(self, index, name=""):
        super().__init__()
        self.index = index
        self.name = name

    def __repr__(self):
        return f"$arg{self.index}"


class RetAddrValue(MValue):
    """The caller's JAL value (entry age 1)."""

    def __init__(self):
        super().__init__()

    def __repr__(self):
        return "$retaddr"


class RetValValue(MValue):
    """The return value of a particular call site (resume age 2)."""

    def __init__(self, call_site):
        super().__init__()
        self.call_site = call_site

    def __repr__(self):
        return "$retval"


class MInst(MValue):
    """One machine instruction; it *is* the logical value it produces.

    ``srcs`` holds logical values; ``imm`` the immediate (if any);
    ``target`` an :class:`MBlock` for branches/jumps or a function name for
    JAL.  ``dists`` is filled by the distance walk.
    """

    def __init__(self, op, srcs=(), imm=None, target=None, comment=""):
        super().__init__()
        self.op = op
        self.srcs = list(srcs)
        self.imm = imm
        self.target = target
        self.dists = None
        self.comment = comment

    def is_terminator(self):
        return self.op in ("J", "JR", "BEZ", "BNZ", "HALT")

    def is_call(self):
        return self.op == "JAL"

    def is_pure_alu(self):
        """Safe to sink: no memory, control, SP, or I/O effects."""
        return self.op in (
            "ADD",
            "SUB",
            "AND",
            "OR",
            "XOR",
            "SLL",
            "SRL",
            "SRA",
            "SLT",
            "SLTU",
            "MUL",
            "ADDI",
            "ANDI",
            "ORI",
            "XORI",
            "SLLI",
            "SRLI",
            "SRAI",
            "SLTI",
            "SLTUI",
            "LUI",
            "RMOV",
        )

    def __repr__(self):
        parts = [self.op]
        parts.extend(repr(s) for s in self.srcs)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.target is not None:
            name = getattr(self.target, "label", self.target)
            parts.append(f"-> {name}")
        text = " ".join(parts)
        if self.comment:
            text += f"  # {self.comment}"
        return text


class RefreshItem:
    """One slot of a merge block's refresh sequence.

    ``target`` is the logical value the slot (re)produces at a fixed entry
    distance.  ``source_for(pred)`` tells the emitter what to emit in a given
    predecessor: the incoming logical value for phis, or ``target`` itself
    for pass-through live values.  RE+ producer sinking replaces a
    predecessor's slot with the original defining instruction.
    """

    def __init__(self, target, sources_by_pred=None):
        self.target = target
        self.sources_by_pred = sources_by_pred or {}
        self.sunk_def_by_pred = {}

    def source_for(self, pred):
        return self.sources_by_pred.get(pred, self.target)

    def __repr__(self):
        return f"Refresh({self.target!r})"


class MBlock(MachineBlockBase):
    """A machine basic block."""

    def __init__(self, label, ir_block=None):
        super().__init__(label, ir_block)
        self.instrs = []
        self.preds = []
        self.refresh_list = []  # RefreshItems, only for merge blocks
        # Filled by isel: logical values live out toward each successor,
        # and spill stores that must run at block top (spilled phis).
        self.rc_live_out = set()

    def body(self):
        return self.instrs

    def append(self, inst):
        self.instrs.append(inst)
        return inst

    def successors(self):
        succs = []
        for inst in self.instrs:
            if inst.op in ("BEZ", "BNZ", "J") and isinstance(inst.target, MBlock):
                succs.append(inst.target)
        return succs

    @property
    def is_merge(self):
        return len(self.preds) >= 2


class MFunction(MachineFunctionBase):
    """A function in backend machine form."""

    BLOCK_CLS = MBlock

    def __init__(self, name, num_args, returns_value):
        super().__init__(name, num_args, returns_value)
        self.frame_words = 0
        self.arg_values = [ArgValue(i) for i in range(num_args)]
        self.retaddr = RetAddrValue()

    @property
    def entry(self):
        if not self.blocks:
            raise CompileError(f"function {self.name} has no machine blocks")
        return self.blocks[0]

    def compute_preds(self):
        for block in self.blocks:
            block.preds = []
        for block in self.blocks:
            for succ in block.successors():
                succ.preds.append(block)
