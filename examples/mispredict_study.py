"""Misprediction-recovery study: sweep branch predictability.

Run:  python examples/mispredict_study.py

Generates a family of workloads whose branch outcomes range from fully
biased (predictable) to LCG-random (hopeless), and measures how the gap
between the conventional superscalar and STRAIGHT grows with the
misprediction rate — the causal mechanism behind the paper's Fig. 13.
"""

from repro.core import build, simulate, ss_4way, straight_4way

TEMPLATE = """
int main() {{
    int lcg = 987654321;
    int acc = 0;
    for (int i = 0; i < 800; i++) {{
        lcg = lcg * 1103515245 + 12345;
        int noise = (lcg >> 16) & 1023;
        if (noise < {threshold}) acc += i;
        else acc -= i * 3;
        acc ^= noise;
    }}
    __out(acc);
    return 0;
}}
"""


def main():
    print("threshold = P(taken)*1024; 512 is a coin flip\n")
    header = (
        f"{'thresh':>6s} {'SS misp':>8s} {'SS cyc':>8s} {'ST cyc':>8s} "
        f"{'ST speedup':>10s} {'SS walk cyc':>11s}"
    )
    print(header)
    print("-" * len(header))
    for threshold in (0, 128, 256, 512, 768, 1024):
        binaries = build(TEMPLATE.format(threshold=threshold))
        ss = simulate(binaries.riscv, ss_4way(), warm_caches=True)
        st = simulate(binaries.straight_re, straight_4way(), warm_caches=True)
        assert ss.output == st.output
        print(
            f"{threshold:6d} {ss.stats.branch_mispredicts:8d} "
            f"{ss.cycles:8d} {st.cycles:8d} "
            f"{ss.cycles / st.cycles:10.3f} {ss.stats.rob_walk_cycles:11d}"
        )
    print(
        "\nAs branches get harder, the superscalar's ROB-walk recovery cost\n"
        "grows while STRAIGHT keeps paying a single ROB-entry read per miss."
    )


if __name__ == "__main__":
    main()
