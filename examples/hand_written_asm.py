"""Programming STRAIGHT by hand: the paper's Fig. 1 Fibonacci idiom.

Run:  python examples/hand_written_asm.py

Writes STRAIGHT assembly directly — no compiler — and runs it on the
functional simulator.  ``ADD [1] [2]`` adds the results of the previous and
second-previous instructions, so a repeated ``ADD [1] [2]`` *is* the
Fibonacci recurrence (paper Fig. 1(a)).  Also shows a loop written with the
distance-fixing discipline done by hand.
"""

from repro.straight import (
    parse_assembly,
    startup_stub,
    link_program,
    StraightInterpreter,
)

# Fig. 1: "this code calculates a Fibonacci series as long as the
# ADD [1] [2] instruction is repeated".
FIG1 = """
main:
    ADDI [0] 1      # F(1)
    ADDI [0] 1      # F(2)
    ADD [1] [2]     # F(3) = previous + second-previous
    ADD [1] [2]     # F(4)
    ADD [1] [2]     # F(5)
    ADD [1] [2]     # F(6)
    ADD [1] [2]     # F(7)
    ADD [1] [2]     # F(8)
    OUT [1]         # 21
    JR [10]         # return to the startup stub's JAL
"""

def main():
    print("Fig. 1 straight-line Fibonacci:")
    program = link_program([startup_stub(), parse_assembly(FIG1)])
    print(program.disassemble())
    interp = StraightInterpreter(program, collect_trace=True)
    interp.run(1000)
    print(f"\noutput: {interp.output}  (F(8) = 21)")
    print(f"distance histogram: {dict(sorted(interp.distance_hist.items()))}")

    print("\nLoop version (hand-made distance fixing):")
    program = link_program([startup_stub(), parse_assembly(LOOP_FIXED)])
    interp = StraightInterpreter(program)
    interp.run(1000)
    print(f"output: {interp.output}  (F(8) = 21)")
    print(
        "\nEvery operand was verified dynamically: the simulator checks that\n"
        "each distance names exactly the producer the programmer intended\n"
        "(write-once register discipline), so a wrong RMOV arrangement would\n"
        "have raised instead of computing garbage."
    )


# The loop version.  The trailing RMOVs of each iteration re-produce every
# loop-carried value so its distance at the loop head is path-independent —
# exactly what the compiler's distance fixing automates.  The return address
# cannot survive the variable-length loop in a register, so this hand-written
# code simply HALTs (compiled code would spill it to the stack frame, the
# paper's Fig. 10(c) `_RETADDR` treatment).
LOOP_FIXED = """
main:
    ADDI [0] 6       # counter
    ADDI [0] 1       # F(1)
    ADDI [0] 1       # F(2)
    RMOV [3]         # refresh counter   -> loop-entry distance 4
    RMOV [3]         # refresh F(n-1)    -> loop-entry distance 3
    RMOV [3]         # refresh F(n)      -> loop-entry distance 2
    J main.loop
main.loop:
    ADD [2] [3]      # F(n+1) = F(n) + F(n-1)
    ADDI [5] -1      # counter - 1
    BNZ [1] main.more
    J main.done
main.more:
    RMOV [2]         # counter  <- the ADDI two back
    RMOV [6]         # F(n-1)   <- the old F(n)
    RMOV [5]         # F(n)     <- the ADD (F(n+1))
    J main.loop
main.done:
    OUT [4]          # the final ADD result (through ADDI, BNZ and J)
    HALT
"""


if __name__ == "__main__":
    main()
