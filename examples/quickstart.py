"""Quickstart: compile one program for both architectures and compare them.

Run:  python examples/quickstart.py

Builds a mini-C program into three binaries (RV32IM for the conventional
superscalar baseline, STRAIGHT RAW, STRAIGHT RE+), checks they compute the
same thing, then times all of them on the paper's 4-way core models.
"""

from repro.core import build, simulate, ss_4way, straight_4way

SOURCE = """
int values[32];

int checksum(int* data, int n) {
    int acc = 12345;
    for (int i = 0; i < n; i++) {
        acc = acc * 31 + data[i];
        if (acc % 7 == 0) acc ^= 0x55AA;
    }
    return acc;
}

int main() {
    for (int i = 0; i < 32; i++) values[i] = i * i - 3 * i;
    for (int round = 0; round < 40; round++) {
        __out(checksum(values, 32));
        values[round % 32] += round;
    }
    return 0;
}
"""


def main():
    print("Building (one source -> three binaries)...")
    binaries = build(SOURCE)

    print("\nTiming on the Table I 4-way models:\n")
    results = {}
    for label, binary in binaries.all().items():
        config = straight_4way() if binary.isa == "straight" else ss_4way()
        results[label] = simulate(binary, config, warm_caches=True)

    outputs = {label: r.output for label, r in results.items()}
    assert len({tuple(o) for o in outputs.values()}) == 1, "outputs diverge!"
    print(f"all binaries agree on {len(outputs['SS'])} output words\n")

    base = results["SS"].cycles
    header = f"{'binary':14s} {'instrs':>8s} {'cycles':>8s} {'IPC':>6s} {'rel. perf':>10s}"
    print(header)
    print("-" * len(header))
    for label, result in results.items():
        stats = result.stats
        print(
            f"{label:14s} {stats.instructions:8d} {stats.cycles:8d} "
            f"{stats.ipc:6.2f} {base / stats.cycles:10.3f}"
        )

    re_plus = results["STRAIGHT-RE+"]
    ss = results["SS"]
    delta = (base / re_plus.cycles - 1) * 100
    print(
        f"\nSTRAIGHT RE+ vs SS: {delta:+.1f}% "
        f"(recovery stalls: {re_plus.stats.recovery_stall_cycles} vs "
        f"{ss.stats.recovery_stall_cycles} cycles)"
    )


if __name__ == "__main__":
    main()
