"""Compiler explorer: watch the paper's Fig. 10 happen to your own code.

Run:  python examples/compiler_explorer.py            # full guided tour
      python examples/compiler_explorer.py --isa bb   # one ISA's pipeline

The default tour compiles the paper's `iota` example through the full
pipeline and prints: the SSA IR (with the phis that become RMOVs), the
STRAIGHT RAW assembly (distance-fixing RMOVs at every merge), the RE+
assembly (producers sunk into refresh slots, loop-through values demoted
to the stack frame), and the RV32IM baseline for comparison.

With ``--isa`` (choices enumerated from the ISA registry, so any newly
registered descriptor shows up automatically) the explorer drives just
that ISA's descriptor: compile, print the assembly of every linked
variant, then execute and report the output.
"""

import argparse

from repro import isa as isa_registry
from repro.frontend import compile_source
from repro.compiler import compile_to_straight, compile_to_riscv

# The paper's Fig. 10 source, verbatim semantics.
SOURCE = """
void iota(int* arr, int n) {
    int i;
    for (i = 0; i < n; ++i) {
        arr[i] = i;
    }
}

int sink[16];

int main() {
    iota(sink, 16);
    __out(sink[15]);
    return 0;
}
"""


def banner(title):
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def explore_isa(name):
    """One ISA's pipeline: every linked variant's assembly plus its output."""
    descriptor = isa_registry.get(name)
    module = compile_source(SOURCE)

    banner("SSA IR (every backend's input, like LLVM IR)")
    print(module.functions["iota"])

    for label, opts in descriptor.binary_labels.items():
        banner(f"{descriptor.display_name} [{label}]")
        compilation = descriptor.compile_module(module, max_distance=1023, **opts)
        print(compilation.units[0].to_text())
        program = compilation.link()
        report = descriptor.static_check(program)
        if report is not None:
            print(f"static verifier: {report.summary()}")
        interp = descriptor.make_interpreter(program)
        interp.run(100_000)
        print(f"output = {interp.output}")


def tour():
    module = compile_source(SOURCE)

    banner("SSA IR (the STRAIGHT compiler's input, like LLVM IR)")
    print(module.functions["iota"])

    banner("STRAIGHT RAW (basic algorithm, Fig. 10(a) style)")
    raw = compile_to_straight(module, redundancy_elimination=False)
    print(raw.units[0].to_text())
    print(f"stats: {raw.stats['iota']}")

    banner("STRAIGHT RE+ (redundancy elimination, Fig. 10(b)/(c) style)")
    re_plus = compile_to_straight(module, redundancy_elimination=True)
    print(re_plus.units[0].to_text())
    print(f"stats: {re_plus.stats['iota']}")

    banner("RV32IM baseline (linear-scan allocated)")
    riscv = compile_to_riscv(module)
    print(riscv.units[0].to_text())

    banner("Verification")
    from repro.straight import StraightInterpreter
    from repro.riscv import RiscvInterpreter

    for name, compilation, interp_cls in (
        ("RAW", raw, StraightInterpreter),
        ("RE+", re_plus, StraightInterpreter),
        ("RV32IM", riscv, RiscvInterpreter),
    ):
        interp = interp_cls(compilation.link())
        interp.run(100_000)
        print(f"{name:7s} output = {interp.output}")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--isa",
        choices=isa_registry.names(),
        help="explore one registered ISA instead of the guided tour",
    )
    args = parser.parse_args(argv)
    if args.isa:
        explore_isa(args.isa)
    else:
        tour()


if __name__ == "__main__":
    main()
