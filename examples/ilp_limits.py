"""ILP-limit study: how much parallelism is there, and who captures it?

Run:  python examples/ilp_limits.py

For the CoreMark-like workload, computes the dataflow-limit IPC (infinite
machine), the window-limited ceiling at several window sizes, and the IPC
the Table I cores actually achieve — quantifying the paper's §I motivation
that a scalable instruction window exploits "much larger ILP".
"""

from repro.core import simulate, ss_4way, straight_4way
from repro.core.api import run_functional
from repro.uarch.ilp import dataflow_limit, window_limited_ipc
from repro.workloads import build_workload


def main():
    binaries = build_workload("coremark")

    print("Dataflow limits (oracle fetch, infinite width):\n")
    traces = {}
    for label in ("SS", "STRAIGHT-RE+"):
        result = run_functional(binaries.all()[label], collect_trace=True)
        traces[label] = result.interpreter.trace
        report = dataflow_limit(traces[label])
        print(
            f"  {label:13s} {report.instructions:7d} instrs, critical path "
            f"{report.critical_path:6d} cycles -> dataflow IPC {report.dataflow_ipc:6.2f}"
        )

    print("\nWindow-limited IPC ceilings (STRAIGHT RE+ trace):\n")
    print(f"  {'window':>7s} {'IPC ceiling':>12s}")
    for window in (8, 16, 64, 224, 1024):
        ipc = window_limited_ipc(traces["STRAIGHT-RE+"], window)
        print(f"  {window:7d} {ipc:12.2f}")

    print("\nAchieved IPC on the Table I 4-way cores:\n")
    ss = simulate(binaries.riscv, ss_4way(), warm_caches=True)
    st = simulate(binaries.straight_re, straight_4way(), warm_caches=True)
    print(f"  SS-4way        {ss.stats.ipc:6.2f}")
    print(f"  STRAIGHT-4way  {st.stats.ipc:6.2f}")
    print(
        "\nThe gap between the achieved IPC and the window ceilings is what\n"
        "branch recovery and structural limits cost; STRAIGHT closes part of\n"
        "it by making the large window cheap (paper §I, §III-B)."
    )


if __name__ == "__main__":
    main()
