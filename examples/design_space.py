"""Design-space exploration: the window-scalability argument.

Run:  python examples/design_space.py

The paper argues STRAIGHT's recovery mechanism removes the classic penalty
for growing the instruction window (the RMT-restoring ROB walk grows with
occupancy).  This sweep scales ROB size for both architectures — keeping
STRAIGHT's MAX_RP = max_distance + ROB registers, and giving SS the same
register-file size — and reports cycles on the CoreMark-like workload.
"""

from repro.core.configs import ss_4way, straight_4way
from repro.core.api import simulate
from repro.workloads import build_workload


def main():
    binaries = build_workload("coremark")
    print("ROB sweep on CoreMark-like (gshare, 4-way issue)\n")
    header = (
        f"{'ROB':>5s} {'SS cycles':>10s} {'ST cycles':>10s} "
        f"{'ST/SS perf':>10s} {'SS walk':>8s}"
    )
    print(header)
    print("-" * len(header))
    for rob in (32, 64, 128, 224, 320):
        regs = 31 + rob + 1
        ss_cfg = ss_4way(rob_entries=rob, phys_regs=regs, name=f"SS-rob{rob}")
        st_cfg = straight_4way(
            rob_entries=rob, phys_regs=regs, name=f"ST-rob{rob}"
        )
        ss = simulate(binaries.riscv, ss_cfg, warm_caches=True)
        st = simulate(binaries.straight_re, st_cfg, warm_caches=True)
        print(
            f"{rob:5d} {ss.cycles:10d} {st.cycles:10d} "
            f"{ss.cycles / st.cycles:10.3f} {ss.stats.rob_walk_cycles:8d}"
        )
    print(
        "\nSS's walk cycles grow with the window while STRAIGHT recovery\n"
        "stays O(1) — the scalability argument of paper §III-B."
    )


if __name__ == "__main__":
    main()
