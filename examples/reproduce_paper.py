"""Reproduce every table and figure of the paper in one run.

Run:  python examples/reproduce_paper.py            # everything (~2-3 min)
      python examples/reproduce_paper.py fig11 fig16  # a subset

Options:
      --jobs N        fan the simulation grid over N worker processes
      --no-cache      ignore AND wipe the persistent result/artifact cache
      --cache-dir D   cache root (default $STRAIGHT_CACHE_DIR or
                      ~/.cache/straight-repro); a warm cache regenerates
                      every figure in seconds

Prints each experiment's series in paper order; the same runners back the
pytest-benchmark suite under benchmarks/.
"""

import argparse
import sys
import time

from repro.harness import ALL_EXPERIMENTS
from repro.harness import cache as cache_mod
from repro.harness.experiments import grid_tasks
from repro.harness.runner import clear_cache
from repro.harness.sweep import ensure_results, set_default_jobs

ORDER = [
    "table1",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "sensitivity_maxdist",
    "fig17",
]


def parse_args(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("names", nargs="*",
                        help=f"experiments to regenerate (default: {ORDER})")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the sweep (default: CPUs)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable and wipe the persistent cache")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent cache root")
    return parser.parse_args(argv)


def main(argv):
    args = parse_args(argv)
    names = args.names or ORDER
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from {ORDER}")
            return 1

    cache_mod.configure(args.cache_dir, enabled=not args.no_cache)
    if args.no_cache:
        clear_cache(disk=True)
    if args.jobs is not None:
        set_default_jobs(args.jobs)

    total_start = time.time()
    # Resolve the whole grid up front: one sweep fans every needed
    # (workload, binary, config) point across the pool / the persistent
    # cache; the per-figure runners below are then served from memory.
    tasks = grid_tasks([n for n in names if n in ORDER])
    if tasks:
        print(f"sweeping {len(tasks)} grid points "
              f"(jobs={args.jobs or 'auto'}, cache="
              f"{'off' if args.no_cache else cache_mod.cache_root()}) ...")
        ensure_results(tasks, jobs=args.jobs)
        report = cache_mod.cache_report()
        hits = report["results"]["hits"]
        misses = report["results"]["misses"]
        print(f"grid ready in {time.time() - total_start:.1f}s "
              f"(result cache: {hits} hits, {misses} misses)")

    for name in names:
        start = time.time()
        result = ALL_EXPERIMENTS[name]()
        print()
        print(result["text"])
        print(f"[{name} regenerated in {time.time() - start:.1f}s]")
    print(f"\nTotal: {time.time() - total_start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
