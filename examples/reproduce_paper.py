"""Reproduce every table and figure of the paper in one run.

Run:  python examples/reproduce_paper.py            # everything (~2-3 min)
      python examples/reproduce_paper.py fig11 fig16  # a subset

Prints each experiment's series in paper order; the same runners back the
pytest-benchmark suite under benchmarks/.
"""

import sys
import time

from repro.harness import ALL_EXPERIMENTS

ORDER = [
    "table1",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "sensitivity_maxdist",
    "fig17",
]


def main(selected):
    names = selected or ORDER
    total_start = time.time()
    for name in names:
        runner = ALL_EXPERIMENTS.get(name)
        if runner is None:
            print(f"unknown experiment {name!r}; choose from {ORDER}")
            return 1
        start = time.time()
        result = runner()
        print()
        print(result["text"])
        print(f"[{name} regenerated in {time.time() - start:.1f}s]")
    print(f"\nTotal: {time.time() - total_start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
