"""Sweep engine + persistent cache tests.

Covers the ISSUE 4 guarantees: inline and pooled execution produce
identical, deterministically-ordered results; a second run is served from
the persistent cache; cache keys never alias across timing-relevant config
fields or backend options; worker crashes degrade to structured errors with
crash dumps while the sweep completes; ``--no-cache`` semantics wipe the
disk layer even while it is disabled; stale-schema entries self-evict.
"""

import glob
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.core.configs import ss_2way, straight_2way
from repro.harness import cache as cache_mod
from repro.harness.runner import clear_cache
from repro.harness.sweep import (
    SweepTask,
    clear_memo,
    compile_binary_cached,
    cached_simulate,
    ensure_results,
    payload_or_raise,
    run_sweep,
)

TINY = """
int main() {
    int s = 0;
    for (int i = 0; i < 20; i++) { s += i * 3; }
    __out(s);
    return 0;
}
"""


@pytest.fixture
def disk_cache(tmp_path):
    """A fresh persistent cache rooted in tmp_path, restored afterwards."""
    previous = cache_mod.swap_state()
    cache_mod.configure(str(tmp_path / "cache"), enabled=True)
    clear_memo()
    yield cache_mod._state
    clear_memo()
    cache_mod.swap_state(previous)


def tiny_tasks():
    return [
        SweepTask(
            f"tiny/{config.name}",
            "tiny",
            config=config,
            compile_opts={"target": target, "source_text": TINY},
        )
        for config, target in (
            (ss_2way(), "riscv"),
            (straight_2way(), "straight"),
        )
    ]


class TestSweepEngine:
    def test_inline_results_are_deterministic_and_complete(self, disk_cache):
        tasks = tiny_tasks()
        report = run_sweep(tasks, jobs=1)
        assert report.ok
        assert list(report.results) == [t.task_id for t in tasks]
        for task in tasks:
            payload = payload_or_raise(report.results[task.task_id])
            assert payload["kind"] == "timing"
            assert payload["stats"]["cycles"] > 0

    def test_pool_matches_inline_bit_for_bit(self, disk_cache, tmp_path):
        tasks = tiny_tasks()
        inline = run_sweep(tasks, jobs=1)
        # Fresh cache + memo so the pooled run recomputes from scratch.
        cache_mod.configure(str(tmp_path / "cache2"), enabled=True)
        clear_memo()
        pooled = run_sweep(tasks, jobs=2)
        assert pooled.ok
        assert list(pooled.results) == list(inline.results)
        assert pooled.results == inline.results

    def test_second_run_served_from_cache(self, disk_cache):
        tasks = tiny_tasks()
        cold = run_sweep(tasks, jobs=1)
        assert cold.manifest["cache_served"] == 0
        clear_memo()
        warm = run_sweep(tasks, jobs=1)
        assert warm.manifest["cache_served"] == len(tasks)
        assert warm.result_hit_rate() == 1.0
        assert warm.results == cold.results

    def test_ensure_results_memoizes_in_process(self, disk_cache):
        tasks = tiny_tasks()
        first = ensure_results(tasks)
        second = ensure_results(tasks)
        for task in tasks:
            assert first[task.task_id] is second[task.task_id]

    def test_worker_crash_degrades_to_structured_error(self, disk_cache,
                                                       tmp_path):
        diagnostics = str(tmp_path / "diag")
        bad = SweepTask("bad/task", "no_such_workload", binary_label="SS",
                        config=ss_2way())
        tasks = [bad] + tiny_tasks()
        report = run_sweep(tasks, jobs=2, diagnostics_dir=diagnostics)
        assert not report.ok
        assert report.manifest["failed"] == ["bad/task"]
        # The crash is a structured payload with a traceback, and
        # payload_or_raise re-raises it as a SimulationError in the parent.
        payload = report.results["bad/task"]
        assert payload["kind"] == "error"
        assert "no_such_workload" in payload["message"]
        assert payload["traceback"]
        with pytest.raises(SimulationError):
            payload_or_raise(payload, "bad/task")
        # Every other task still completed (partial-results manifest).
        assert report.manifest["completed"] == [t.task_id for t in tasks[1:]]
        for task in tasks[1:]:
            assert report.results[task.task_id]["kind"] == "timing"
        # A crash dump and the manifest were persisted.
        assert glob.glob(os.path.join(diagnostics, "*.json"))
        assert os.path.exists(report.manifest["manifest_path"])

    def test_raise_on_error_propagates(self, disk_cache):
        bad = SweepTask("bad/task", "no_such_workload", binary_label="SS",
                        config=ss_2way())
        with pytest.raises(SimulationError):
            run_sweep([bad], jobs=1, raise_on_error=True)


class TestCacheKeys:
    #: Timing-relevant scalar fields; perturbing any one must change the key.
    TIMING_FIELDS = (
        "fetch_width", "issue_width", "commit_width", "frontend_depth",
        "rename_stage_depth", "rob_entries", "iq_entries", "phys_regs",
        "lsq_loads", "lsq_stores", "btb_entries", "ras_depth", "mem_latency",
        "max_distance", "mdp_replay_penalty", "spadd_per_group",
        "btb_miss_penalty", "prefetch_streams", "prefetch_degree",
    )

    @settings(max_examples=60, deadline=None)
    @given(
        field=st.sampled_from(TIMING_FIELDS),
        delta=st.integers(min_value=1, max_value=64),
        straight=st.booleans(),
    )
    def test_any_timing_field_changes_the_key(self, field, delta, straight):
        config = straight_2way() if straight else ss_2way()
        perturbed = config.copy(**{field: getattr(config, field) + delta})
        assert config.cache_key() != perturbed.cache_key()
        # The display name does NOT participate: renaming must not alias or
        # split entries.
        renamed = config.copy(name=config.name + "-renamed")
        assert renamed.cache_key() == config.cache_key()

    def test_configs_differing_in_timing_field_get_distinct_entries(
            self, disk_cache):
        binary = compile_binary_cached(TINY, target="straight")
        base = straight_2way()
        cached_simulate(binary, base)
        cached_simulate(binary, base.copy(mem_latency=base.mem_latency + 50))
        results = cache_mod.result_cache()
        assert results.stats.stores == 2

    def test_same_binary_distinct_max_distance_artifacts(self, disk_cache):
        first = compile_binary_cached(TINY, target="straight",
                                      max_distance=1023)
        second = compile_binary_cached(TINY, target="straight",
                                       max_distance=127)
        artifacts = cache_mod.artifact_cache()
        # Two distinct artifact entries, not one shared decode/compile.
        assert artifacts.stats.stores == 2
        assert first.program.max_distance != second.program.max_distance
        assert cache_mod.binary_digest(first) != cache_mod.binary_digest(second)

    def test_backend_options_change_the_artifact_key(self, disk_cache):
        compile_binary_cached(TINY, target="straight",
                              redundancy_elimination=True)
        compile_binary_cached(TINY, target="straight",
                              redundancy_elimination=False)
        assert cache_mod.artifact_cache().stats.stores == 2

    def test_artifact_cache_round_trip_is_usable(self, disk_cache):
        from repro.core.api import run_functional

        cold = compile_binary_cached(TINY, target="straight")
        cold_out = run_functional(cold).output
        # A second process would hit the disk entry; emulate by dropping the
        # in-memory layer object and re-reading.
        cache_mod._state._artifacts = None
        warm = compile_binary_cached(TINY, target="straight")
        assert run_functional(warm).output == cold_out


class TestInvalidation:
    def test_clear_cache_disk_wipes_even_while_disabled(self, disk_cache):
        run_sweep(tiny_tasks(), jobs=1)
        assert cache_mod.result_cache().stats.stores == 2
        root = cache_mod.cache_root()
        # --no-cache: the layer is disabled first, then cleared; nothing
        # persisted may survive.
        cache_mod.configure(enabled=False)
        clear_cache(disk=True)
        assert not os.path.exists(os.path.join(root, "results"))
        assert not os.path.exists(os.path.join(root, "artifacts"))
        cache_mod.configure(enabled=True)
        clear_memo()
        report = run_sweep(tiny_tasks(), jobs=1)
        assert report.manifest["cache_served"] == 0

    def test_schema_bump_auto_evicts_stale_entries(self, disk_cache,
                                                   monkeypatch):
        results = cache_mod.result_cache()
        key = {"kind": "timing", "probe": 1}
        results.put(key, {"stats": {"cycles": 1}})
        assert results.get(key) is not None
        monkeypatch.setattr(cache_mod, "SCHEMA_VERSION",
                            cache_mod.SCHEMA_VERSION + 1)
        assert results.get(key) is None
        assert results.stats.evictions == 1
        # The stale file is gone, not just skipped.
        assert results.get(key) is None
        assert results.stats.evictions == 1

    def test_corrupt_entry_evicts_as_miss(self, disk_cache):
        results = cache_mod.result_cache()
        key = {"kind": "timing", "probe": 2}
        results.put(key, {"stats": {"cycles": 1}})
        path = results._path(key)
        with open(path, "w") as handle:
            handle.write("{ not json")
        assert results.get(key) is None
        assert not os.path.exists(path)


class TestBrokenPoolFallback:
    """A SIGKILLed worker breaks the pool; the parent must harvest finished
    futures (never double-counting them) and re-run only the lost tasks
    inline, with the manifest naming exactly the inline re-runs."""

    def kill_grid(self, tmp_path, count=3, victim=0):
        tasks = []
        for index in range(count):
            config = straight_2way() if index % 2 else ss_2way()
            target = "straight" if index % 2 else "riscv"
            tasks.append(SweepTask(
                f"bp/t{index}",
                f"bp-tiny{index}",
                config=config,
                compile_opts={"target": target, "source_text": TINY},
                chaos=({"mode": "kill",
                        "once": str(tmp_path / "kill.flag")}
                       if index == victim else None),
            ))
        return tasks

    def test_fallback_completes_without_double_counting(self, disk_cache,
                                                        tmp_path):
        tasks = self.kill_grid(tmp_path)
        events = []
        report = run_sweep(
            tasks, jobs=2,
            progress=lambda *event: events.append(event),
        )
        # Every task completed despite the dead worker...
        assert report.ok
        assert report.manifest["completed"] == [t.task_id for t in tasks]
        # ...exactly one progress event per task: finished futures were
        # harvested, not re-recorded on top of the inline re-run.
        assert len(events) == len(tasks)
        assert sorted(e[2] for e in events) == sorted(
            t.task_id for t in tasks
        )
        assert [e[0] for e in events] == list(range(1, len(tasks) + 1))
        # The manifest names the tasks that re-ran inline, and only those.
        fallback = report.manifest["inline_fallback"]
        assert fallback
        assert set(fallback) <= {t.task_id for t in tasks}
        inline_events = [e[2] for e in events if e[3] == "inline"]
        assert sorted(inline_events) == sorted(fallback)

    def test_fallback_results_match_clean_run(self, disk_cache, tmp_path):
        tasks = self.kill_grid(tmp_path)
        broken = run_sweep(tasks, jobs=2)
        cache_mod.configure(str(tmp_path / "cache-clean"), enabled=True)
        clear_memo()
        clean = run_sweep(self.kill_grid(tmp_path), jobs=1)
        assert not clean.manifest["inline_fallback"]
        assert broken.results == clean.results

    def test_clean_pool_reports_no_fallback(self, disk_cache):
        report = run_sweep(tiny_tasks(), jobs=2)
        assert report.ok
        assert report.manifest["inline_fallback"] == []
