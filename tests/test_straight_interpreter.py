"""STRAIGHT functional simulator: semantics, the write-once discipline,
distance validation, and linker behaviour."""

import pytest

from repro.common.errors import LinkError, SimulationError
from repro.common.layout import STACK_TOP, TEXT_BASE
from repro.straight import (
    parse_assembly,
    startup_stub,
    link_program,
    StraightInterpreter,
)


def run_asm(body, **kwargs):
    """Assemble a main body, link with the stub, run, return the interpreter."""
    unit = parse_assembly("main:\n" + body)
    program = link_program([startup_stub(), unit], **kwargs)
    interp = StraightInterpreter(program, collect_trace=True)
    result = interp.run(100_000)
    assert result.status == "halt"
    return interp


class TestBasicSemantics:
    def test_fibonacci_distances(self):
        interp = run_asm(
            """
            ADDI [0] 1
            ADDI [0] 1
            ADD [1] [2]
            ADD [1] [2]
            ADD [1] [2]
            OUT [1]
            JR [7]
            """
        )
        assert interp.output == [5]

    def test_zero_register(self):
        interp = run_asm(
            """
            ADD [0] [0]
            OUT [1]
            JR [3]
            """
        )
        assert interp.output == [0]

    def test_store_returns_value(self):
        # ST writes its stored value to its destination register (§III-A),
        # so a later instruction can reference the ST by distance.
        interp = run_asm(
            """
            ADDI [0] 123
            LUI 256
            ST [2] [1] 0
            OUT [1]
            JR [5]
            """
        )
        assert interp.output == [123]

    def test_load_store_roundtrip(self):
        interp = run_asm(
            """
            LUI 256
            ADDI [0] 77
            ST [1] [2] 4
            LD [3] 16
            OUT [1]
            JR [6]
            """
        )
        # ST stored to 0x100000 + 4*4 = 0x100010; LD reads base+16.
        assert interp.output == [77]

    def test_spadd_updates_sp_and_writes_copy(self):
        interp = run_asm(
            """
            SPADD -16
            SPADD 0
            OUT [1]
            SPADD 16
            JR [5]
            """
        )
        assert interp.output == [STACK_TOP - 16]
        assert interp.sp == STACK_TOP

    def test_bez_taken_and_not_taken(self):
        interp = run_asm(
            """
            ADDI [0] 0
            BEZ [1] main.skip
            OUT [1]
            main.skip:
            ADDI [0] 7
            BNZ [1] main.skip2
            OUT [1]
            main.skip2:
            OUT [2]
            JR [6]
            """
        )
        # Both branches taken: the skipped OUTs never execute; the final OUT
        # reaches the second ADDI at dynamic distance 2 (through the BNZ).
        assert interp.output == [7]

    def test_lui(self):
        interp = run_asm(
            """
            LUI 0xABCDE
            OUT [1]
            JR [3]
            """
        )
        assert interp.output == [0xABCDE << 12]

    def test_jal_writes_return_address(self):
        interp = run_asm(
            """
            OUT [1]
            JR [2]
            """
        )
        # main's first instruction sees the stub JAL at distance 1, whose
        # value is the address of the HALT that follows it.
        assert interp.output == [TEXT_BASE + 4]


class TestWriteOnceDiscipline:
    def test_stale_distance_detected(self):
        # Reference a register older than MAX_RP: the interpreter must
        # detect the aliased (overwritten) register rather than return junk.
        body = "\n".join(["ADDI [0] 1"] * 40) + "\nADD [40] [1]\nJR [43]"
        unit = parse_assembly("main:\n" + body)
        program = link_program([startup_stub(), unit])
        interp = StraightInterpreter(program, max_rp=32)
        with pytest.raises(SimulationError, match="stale|aliased"):
            interp.run(1000)

    def test_distance_before_program_start(self):
        unit = parse_assembly("main:\nADD [900] [1]\nJR [2]")
        program = link_program([startup_stub(), unit])
        with pytest.raises(SimulationError, match="before"):
            StraightInterpreter(program).run(100)

    def test_checks_can_be_disabled(self):
        body = "\n".join(["ADDI [0] 1"] * 40) + "\nADD [40] [1]\nOUT [1]\nHALT"
        unit = parse_assembly("main:\n" + body)
        program = link_program([startup_stub(), unit])
        interp = StraightInterpreter(program, max_rp=32, check_distances=False)
        assert interp.run(1000).status == "halt"
        assert interp.output == [2]  # the aliased register happens to hold 1

    def test_misaligned_access_rejected(self):
        with pytest.raises(SimulationError, match="misaligned"):
            run_asm(
                """
                LUI 256
                ADDI [1] 2
                LD [1] 0
                JR [4]
                """
            )


class TestTraceAndStats:
    def test_trace_dest_is_sequence_number(self):
        interp = run_asm(
            """
            ADDI [0] 5
            RMOV [1]
            OUT [1]
            JR [4]
            """
        )
        seqs = [entry.dest for entry in interp.trace]
        assert seqs == list(range(len(interp.trace)))

    def test_trace_sources_are_producer_seqs(self):
        interp = run_asm(
            """
            ADDI [0] 5
            RMOV [1]
            OUT [1]
            JR [4]
            """
        )
        rmov = interp.trace[2]  # stub JAL is seq 0
        assert rmov.mnemonic == "RMOV"
        assert rmov.srcs == (1,)  # produced by the ADDI at seq 1

    def test_distance_histogram(self):
        interp = run_asm(
            """
            ADDI [0] 1
            ADD [1] [1]
            OUT [1]
            JR [4]
            """
        )
        assert interp.distance_hist[1] >= 3

    def test_class_counts_group_rmov(self):
        interp = run_asm(
            """
            ADDI [0] 1
            RMOV [1]
            RMOV [1]
            JR [4]
            """
        )
        counts = interp.class_counts()
        assert counts["rmov"] == 2
        assert counts["jump_branch"] >= 2  # stub JAL + JR


class TestLinker:
    def test_duplicate_label_in_unit(self):
        from repro.common.errors import AsmError

        with pytest.raises(AsmError, match="duplicate"):
            parse_assembly("main:\nJR [1]\nmain:\nJR [1]")

    def test_duplicate_label_across_units(self):
        first = parse_assembly("main:\nJR [1]")
        second = parse_assembly("main:\nJR [1]")
        with pytest.raises(LinkError, match="duplicate"):
            link_program([startup_stub(), first, second])

    def test_undefined_label(self):
        unit = parse_assembly("main:\nJ nowhere")
        with pytest.raises(LinkError, match="undefined"):
            link_program([startup_stub(), unit])

    def test_missing_start(self):
        unit = parse_assembly("main:\nJR [1]")
        with pytest.raises(LinkError, match="_start"):
            link_program([unit])

    def test_pc_relative_offsets(self):
        unit = parse_assembly("main:\nJ main.next\nmain.next:\nJR [2]")
        program = link_program([startup_stub(), unit])
        j_instr = program.instrs[program.labels["main"]]
        assert j_instr.imm == 1  # one word forward

    def test_data_segment_loaded(self):
        unit = parse_assembly(
            """
main:
    LUI 256
    LD [1] 4
    OUT [1]
    JR [4]
"""
        )
        program = link_program(
            [startup_stub(), unit], data_words=[11, 22], data_base=0x100000
        )
        interp = StraightInterpreter(program)
        interp.run(100)
        assert interp.output == [22]

    def test_disassembly_lists_labels(self):
        unit = parse_assembly("main:\nJR [1]")
        program = link_program([startup_stub(), unit])
        text = program.disassemble()
        assert "main:" in text and "_start:" in text
