"""STRAIGHT ISA: instruction construction, encoding round-trips, assembler."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import AsmError
from repro.straight.isa import SInstr, OPCODES, MAX_DISTANCE
from repro.straight.encoding import encode, decode
from repro.straight.assembler import parse_assembly


class TestSInstr:
    def test_operand_count_enforced(self):
        with pytest.raises(AsmError, match="source"):
            SInstr("ADD", [1])
        with pytest.raises(AsmError, match="source"):
            SInstr("RMOV", [1, 2])

    def test_distance_range_enforced(self):
        SInstr("ADD", [0, MAX_DISTANCE])
        with pytest.raises(AsmError, match="out of range"):
            SInstr("ADD", [1, MAX_DISTANCE + 1])

    def test_immediate_required(self):
        with pytest.raises(AsmError, match="immediate"):
            SInstr("ADDI", [1])

    def test_immediate_rejected_where_absent(self):
        with pytest.raises(AsmError, match="does not take"):
            SInstr("ADD", [1, 2], imm=5)

    def test_unknown_mnemonic(self):
        with pytest.raises(AsmError, match="unknown"):
            SInstr("FROB", [])

    def test_asm_text_roundtrip(self):
        instr = SInstr("ST", [4, 7], imm=2)
        assert instr.to_asm() == "ST [4] [7] 2"

    def test_every_opcode_unique(self):
        codes = [spec.code for spec in OPCODES.values()]
        assert len(codes) == len(set(codes))
        assert 0 not in codes  # opcode 0 reserved


def _random_instr(draw):
    mnemonic = draw(st.sampled_from(sorted(OPCODES)))
    spec = OPCODES[mnemonic]
    srcs = [
        draw(st.integers(min_value=0, max_value=MAX_DISTANCE))
        for _ in range(spec.num_srcs)
    ]
    imm = None
    if spec.has_imm:
        if spec.fmt == "R2":
            imm = draw(st.integers(min_value=-16, max_value=15))
        elif spec.fmt == "R1I":
            imm = draw(st.integers(min_value=-(2**14), max_value=2**14 - 1))
        elif spec.fmt == "I25":
            imm = draw(st.integers(min_value=-(2**24), max_value=2**24 - 1))
        elif spec.fmt == "I20":
            imm = draw(st.integers(min_value=0, max_value=2**20 - 1))
    return SInstr(mnemonic, srcs, imm)


random_instrs = st.composite(_random_instr)()


class TestEncoding:
    @given(random_instrs)
    def test_roundtrip(self, instr):
        word = encode(instr)
        assert 0 <= word < 2**32
        decoded = decode(word)
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.srcs == instr.srcs
        assert decoded.imm == (instr.imm if instr.spec.has_imm else None)

    def test_out_of_range_immediate_rejected(self):
        with pytest.raises(AsmError, match="fit"):
            encode(SInstr("ADDI", [1], imm=2**14))

    def test_unresolved_label_rejected(self):
        with pytest.raises(AsmError, match="unresolved"):
            encode(SInstr("J", [], label="somewhere"))

    def test_invalid_opcode_decode(self):
        with pytest.raises(AsmError, match="invalid"):
            decode(0)  # opcode 0 reserved

    def test_negative_immediate_roundtrip(self):
        instr = SInstr("SPADD", [], imm=-64)
        assert decode(encode(instr)).imm == -64


class TestAssembler:
    def test_parse_labels_and_instrs(self):
        unit = parse_assembly(
            """
            # comment
            main:
                ADDI [0] 5
                OUT [1]
            loop:
                J loop
            """
        )
        labels = [item for kind, item in unit.items if kind == "label"]
        assert labels == ["main", "loop"]
        instrs = unit.instructions()
        assert [i.mnemonic for i in instrs] == ["ADDI", "OUT", "J"]
        assert instrs[2].label == "loop"

    def test_hex_distances_and_imm(self):
        unit = parse_assembly("ADDI [0x2] 0x10")
        instr = unit.instructions()[0]
        assert instr.srcs == (2,)
        assert instr.imm == 16

    def test_text_roundtrip(self):
        text = "main:\n    ST [4] [7] 1\n    BEZ [1] main\n"
        unit = parse_assembly(text)
        assert parse_assembly(unit.to_text()).to_text() == unit.to_text()

    def test_bad_mnemonic(self):
        with pytest.raises(AsmError, match="unknown mnemonic"):
            parse_assembly("BLORP [1]")

    def test_bad_distance(self):
        with pytest.raises(AsmError, match="bad distance"):
            parse_assembly("RMOV [x]")

    def test_duplicate_immediate(self):
        with pytest.raises(AsmError, match="duplicate"):
            parse_assembly("ADDI [1] 2 3")
