"""Shared fixtures: small programs and session-cached builds."""

import pytest

from repro.frontend import compile_source
from repro.core.api import build

#: A compact program exercising calls, loops, merges, arrays and globals.
SMALL_PROGRAM = """
int g_data[8] = {5, 3, 8, 1, 9, 2, 7, 4};

int sum(int* arr, int n) {
    int total = 0;
    for (int i = 0; i < n; ++i) total += arr[i];
    return total;
}

int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}

int main() {
    __out(sum(g_data, 8));
    __out(fib(10));
    int x = 0;
    for (int i = 0; i < 10; i++) {
        if (i % 2 == 0) x += i;
        else x -= 1;
    }
    __out(x);
    return 0;
}
"""

#: Expected output channel of SMALL_PROGRAM.
SMALL_PROGRAM_OUTPUT = [39, 55, 15]


@pytest.fixture(scope="session")
def small_module():
    return compile_source(SMALL_PROGRAM)


@pytest.fixture(scope="session")
def small_build():
    return build(SMALL_PROGRAM)


def compile_and_run_both(source, max_steps=2_000_000, max_distance=1023):
    """Helper: build every registered ISA's binaries, run functionally,
    assert all outputs agree.

    Returns the common output list.
    """
    from repro.core.api import run_functional

    result = build(source, max_distance=max_distance)
    outputs = {}
    for label, binary in result.all().items():
        outputs[label] = run_functional(binary, max_steps=max_steps).output
    reference = outputs["SS"]
    assert all(out == reference for out in outputs.values()), outputs
    return reference
