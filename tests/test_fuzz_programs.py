"""Structured program fuzzing: random control-flow graphs through both ISAs.

Hypothesis generates whole mini-C programs (nested ifs/whiles/fors, global
arrays, helper calls, mutation statements) and checks the three binaries
agree word-for-word.  Combined with the STRAIGHT ISS's dynamic distance
validation, this is an end-to-end proof obligation over random CFG shapes —
the cases where distance fixing is hardest.

Runs are deterministic: the generation seed comes from ``REPRO_FUZZ_SEED``
(default below) and is echoed into every failure report, so a failing CFG
shape can be replayed exactly with
``REPRO_FUZZ_SEED=<seed> pytest tests/test_fuzz_programs.py``.
"""

import os

from hypothesis import given, note, seed, settings, strategies as st

from tests.conftest import compile_and_run_both

#: Explicit generation seed; override via the environment to explore, keep
#: the default for reproducible CI runs.
FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260805"))

_MUTATIONS = [
    "acc += {v};",
    "acc -= {v} * 3;",
    "acc ^= {v} + i;",
    "acc = acc * 5 + {v};",
    "buf[(acc & 7)] = {v};",
    "acc += buf[({v}) & 7];",
    "tmp = {v}; acc += tmp;",
]

_VALUES = ["i", "acc", "7", "lim", "tmp", "buf[1]"]


@st.composite
def statement(draw, depth):
    kind = draw(
        st.sampled_from(
            ["mut", "mut", "mut", "if", "ifelse", "while", "for", "break_guard"]
            if depth < 3
            else ["mut"]
        )
    )
    if kind == "mut":
        template = draw(st.sampled_from(_MUTATIONS))
        value = draw(st.sampled_from(_VALUES))
        return template.format(v=value)
    inner = draw(block(depth=depth + 1))
    if kind == "if":
        value = draw(st.sampled_from(_VALUES))
        return f"if (({value}) % 3 != 0) {{ {inner} }}"
    if kind == "ifelse":
        value = draw(st.sampled_from(_VALUES))
        other = draw(block(depth=depth + 1))
        return f"if (({value}) & 1) {{ {inner} }} else {{ {other} }}"
    if kind == "while":
        bound = draw(st.integers(min_value=1, max_value=4))
        return (
            f"{{ int w = 0; while (w < {bound}) {{ {inner} w++; }} }}"
        )
    if kind == "for":
        bound = draw(st.integers(min_value=1, max_value=4))
        return f"for (int k = 0; k < {bound}; k++) {{ {inner} }}"
    # break_guard: a loop with a conditional break/continue
    return (
        "{ int w = 0; while (1) { w++; if (w > 3) break; "
        f"if (w == 2) continue; {inner} }} }}"
    )


@st.composite
def block(draw, depth=0):
    count = draw(st.integers(min_value=1, max_value=3))
    return " ".join(draw(statement(depth)) for _ in range(count))


@seed(FUZZ_SEED)
@settings(max_examples=25, deadline=None)
@given(block(), st.integers(min_value=1, max_value=5))
def test_random_cfg_programs_agree(body, lim):
    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    source = f"""
    int buf[8];
    int helper(int x) {{ return x * 2 + 1; }}
    int main() {{
        int acc = 1;
        int tmp = 0;
        int lim = {lim};
        for (int i = 0; i < lim + 2; i++) {{
            {body}
        }}
        __out(acc);
        __out(buf[1]); __out(buf[3]); __out(buf[7]);
        __out(helper(acc & 255));
        return 0;
    }}
    """
    compile_and_run_both(source, max_steps=500_000)


@seed(FUZZ_SEED)
@settings(max_examples=12, deadline=None)
@given(block(), st.integers(min_value=15, max_value=63))
def test_random_cfg_programs_agree_with_tight_distances(body, max_distance):
    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    source = f"""
    int buf[8];
    int main() {{
        int acc = 1;
        int tmp = 0;
        int lim = 3;
        for (int i = 0; i < 4; i++) {{
            {body}
        }}
        __out(acc);
        return 0;
    }}
    """
    from repro.common.errors import CompileError

    try:
        compile_and_run_both(source, max_steps=500_000, max_distance=max_distance)
    except CompileError as exc:
        # Infeasible live sets must fail cleanly, never miscompile.
        assert "cannot fit" in str(exc)


@seed(FUZZ_SEED)
@settings(max_examples=12, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=5),
    st.integers(min_value=2, max_value=5),
)
def test_random_call_chains_agree(selectors, depth):
    """Random call graphs: each function calls the next via a selector."""
    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    functions = []
    for level in range(depth):
        callee = f"f{level + 1}" if level + 1 < depth else None
        call = f"{callee}(x - 1) +" if callee else ""
        functions.append(
            f"int f{level}(int x) {{\n"
            f"    if (x <= 0) return {level + 1};\n"
            f"    return {call} x * {level + 2};\n"
            f"}}\n"
        )
    calls = " + ".join(f"f0({s})" for s in selectors)
    source = "\n".join(reversed(functions)) + f"""
    int main() {{ __out({calls}); return 0; }}
    """
    compile_and_run_both(source, max_steps=500_000)
