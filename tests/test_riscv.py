"""RV32IM ISA: encodings (spec compliance + round-trips), assembler, ISS."""

import pytest
from hypothesis import given, strategies as st

from repro.common.errors import AsmError, SimulationError
from repro.common.layout import STACK_TOP
from repro.riscv import (
    RInstr,
    OPCODES,
    reg_number,
    encode,
    decode,
    parse_assembly,
    startup_stub,
    link_program,
    RiscvInterpreter,
)


class TestRegisters:
    def test_abi_names(self):
        assert reg_number("zero") == 0
        assert reg_number("ra") == 1
        assert reg_number("sp") == 2
        assert reg_number("a0") == 10
        assert reg_number("t6") == 31
        assert reg_number("fp") == 8

    def test_numeric_names(self):
        assert reg_number("x0") == 0
        assert reg_number("x31") == 31

    def test_bad_register(self):
        with pytest.raises(AsmError):
            reg_number("x32")
        with pytest.raises(AsmError):
            reg_number("q7")


class TestKnownEncodings:
    """Golden words checked against the RISC-V spec examples."""

    def test_addi(self):
        # addi x1, x2, 3 -> imm=3, rs1=2, funct3=0, rd=1, opcode=0x13
        word = encode(RInstr("ADDI", rd=1, rs1=2, imm=3))
        assert word == (3 << 20) | (2 << 15) | (1 << 7) | 0x13

    def test_add(self):
        word = encode(RInstr("ADD", rd=3, rs1=1, rs2=2))
        assert word == (2 << 20) | (1 << 15) | (3 << 7) | 0x33

    def test_sub_funct7(self):
        word = encode(RInstr("SUB", rd=3, rs1=1, rs2=2))
        assert word >> 25 == 0b0100000

    def test_mul_funct7(self):
        word = encode(RInstr("MUL", rd=3, rs1=1, rs2=2))
        assert word >> 25 == 0b0000001

    def test_ecall(self):
        assert encode(RInstr("ECALL")) == 0x00000073

    def test_lui(self):
        word = encode(RInstr("LUI", rd=5, imm=0xABCDE))
        assert word == (0xABCDE << 12) | (5 << 7) | 0x37

    def test_branch_offset_scrambling(self):
        # beq x1, x2, +8
        word = encode(RInstr("BEQ", rs1=1, rs2=2, imm=8))
        decoded = decode(word)
        assert decoded.imm == 8

    def test_jal_negative_offset(self):
        word = encode(RInstr("JAL", rd=1, imm=-16))
        assert decode(word).imm == -16


def _random_rinstr(draw):
    mnemonic = draw(st.sampled_from(sorted(OPCODES)))
    spec = OPCODES[mnemonic]
    reg = st.integers(min_value=0, max_value=31)
    kwargs = {}
    if spec.fmt in ("R", "I", "U", "J"):
        kwargs["rd"] = draw(reg)
    if spec.fmt in ("R", "I", "S", "B"):
        kwargs["rs1"] = draw(reg)
    if spec.fmt in ("R", "S", "B"):
        kwargs["rs2"] = draw(reg)
    if spec.fmt == "I":
        if mnemonic in ("SLLI", "SRLI", "SRAI"):
            kwargs["imm"] = draw(st.integers(min_value=0, max_value=31))
        else:
            kwargs["imm"] = draw(st.integers(min_value=-2048, max_value=2047))
    elif spec.fmt == "S":
        kwargs["imm"] = draw(st.integers(min_value=-2048, max_value=2047))
    elif spec.fmt == "B":
        kwargs["imm"] = draw(st.integers(min_value=-2048, max_value=2047)) * 2
    elif spec.fmt == "U":
        kwargs["imm"] = draw(st.integers(min_value=0, max_value=2**20 - 1))
    elif spec.fmt == "J":
        kwargs["imm"] = draw(st.integers(min_value=-(2**19), max_value=2**19 - 1)) * 2
    return RInstr(mnemonic, **kwargs)


random_rinstrs = st.composite(_random_rinstr)()


class TestRoundTrip:
    @given(random_rinstrs)
    def test_encode_decode_roundtrip(self, instr):
        decoded = decode(encode(instr))
        assert decoded.mnemonic == instr.mnemonic
        assert decoded.rd == instr.rd or instr.spec.fmt in ("S", "B", "SYS")
        assert decoded.imm == instr.imm

    def test_overflowing_immediate_rejected(self):
        with pytest.raises(AsmError):
            encode(RInstr("ADDI", rd=1, rs1=1, imm=5000))


class TestAssemblerText:
    def test_parse_memory_operands(self):
        unit = parse_assembly("lw t0, 8(sp)\nsw t1, -4(a0)")
        lw, sw = unit.instructions()
        assert (lw.rd, lw.rs1, lw.imm) == (5, 2, 8)
        assert (sw.rs2, sw.rs1, sw.imm) == (6, 10, -4)

    def test_text_roundtrip(self):
        text = "main:\n    add t0, t1, t2\n    beq t0, zero, main\n"
        unit = parse_assembly(text)
        assert parse_assembly(unit.to_text()).to_text() == unit.to_text()

    def test_wrong_operand_count(self):
        with pytest.raises(AsmError, match="operands"):
            parse_assembly("add t0, t1")


def run_riscv(body, data_words=(), data_base=0):
    unit = parse_assembly("main:\n" + body)
    program = link_program([startup_stub(), unit], data_words, data_base)
    interp = RiscvInterpreter(program, collect_trace=True)
    result = interp.run(100_000)
    assert result.status == "exit"
    return interp, result


class TestInterpreter:
    def test_startup_sets_sp(self):
        interp, result = run_riscv("jalr zero, ra, 0")
        assert interp.regs[2] == STACK_TOP

    def test_arithmetic_and_output(self):
        interp, result = run_riscv(
            """
            addi t0, zero, 21
            slli t1, t0, 1
            addi a0, t1, 0
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """
        )
        assert result.output == [42]

    def test_x0_is_hardwired(self):
        interp, _ = run_riscv(
            """
            addi zero, zero, 99
            addi a0, zero, 0
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """
        )
        assert interp.output == [0]

    def test_memory_roundtrip(self):
        _, result = run_riscv(
            """
            lui t0, 256
            addi t1, zero, 1234
            sw t1, 12(t0)
            lw a0, 12(t0)
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """
        )
        assert result.output == [1234]

    def test_branch_taken(self):
        _, result = run_riscv(
            """
            addi t0, zero, 1
            bne t0, zero, main.skip
            addi t0, zero, 99
            main.skip:
            addi a0, t0, 0
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """
        )
        assert result.output == [1]

    def test_exit_code(self):
        _, result = run_riscv(
            """
            addi a0, zero, 7
            jalr zero, ra, 0
            """
        )
        assert result.exit_code == 7

    def test_unknown_ecall_raises(self):
        with pytest.raises(SimulationError, match="ecall"):
            run_riscv(
                """
                addi a7, zero, 42
                ecall
                jalr zero, ra, 0
                """
            )

    def test_misaligned_load(self):
        with pytest.raises(SimulationError, match="misaligned"):
            run_riscv(
                """
                addi t0, zero, 2
                lw t1, 0(t0)
                jalr zero, ra, 0
                """
            )

    def test_data_segment(self):
        _, result = run_riscv(
            """
            lui t0, 256
            lw a0, 4(t0)
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """,
            data_words=[5, 6],
            data_base=0x100000,
        )
        assert result.output == [6]

    def test_trace_uses_logical_registers(self):
        interp, _ = run_riscv(
            """
            addi t0, zero, 1
            add t1, t0, t0
            addi a0, t1, 0
            addi a7, zero, 1
            ecall
            jalr zero, ra, 0
            """
        )
        add_entry = [e for e in interp.trace if e.mnemonic == "ADD"][0]
        assert add_entry.dest == 6  # t1
        assert add_entry.srcs == (5, 5)  # t0 twice
