"""CLI tool tests (driven through main() with captured stdout)."""

import io
import json
import sys

import pytest

from repro.tools.cli import main

DEMO = """
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += i * i;
    __out(acc);
    return 0;
}
"""


@pytest.fixture
def demo_file(tmp_path):
    path = tmp_path / "demo.c"
    path.write_text(DEMO)
    return str(path)


def run_cli(argv, capsys):
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCompileAndDisasm:
    def test_compile_straight(self, demo_file, capsys):
        code, out, _ = run_cli(["compile", demo_file, "--target", "straight"], capsys)
        assert code == 0
        assert "main:" in out
        assert "SPADD" in out or "RMOV" in out or "ADDI" in out

    def test_compile_riscv(self, demo_file, capsys):
        code, out, _ = run_cli(["compile", demo_file, "--target", "riscv"], capsys)
        assert code == 0
        assert "addi" in out

    def test_compile_raw_has_more_rmovs(self, demo_file, capsys):
        _, re_out, _ = run_cli(["compile", demo_file, "--target", "straight"], capsys)
        _, raw_out, _ = run_cli(
            ["compile", demo_file, "--target", "straight-raw"], capsys
        )
        assert raw_out.count("RMOV") >= re_out.count("RMOV")

    def test_disasm_shows_addresses(self, demo_file, capsys):
        code, out, _ = run_cli(["disasm", demo_file], capsys)
        assert code == 0
        assert "_start:" in out
        assert "0x001000" in out or "0x1000" in out

    def test_max_distance_flag(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["compile", demo_file, "--max-distance", "15"], capsys
        )
        assert code == 0


class TestRun:
    def test_run_outputs_words(self, demo_file, capsys):
        code, out, err = run_cli(["run", demo_file], capsys)
        assert code == 0
        assert out.strip() == "30"  # 0+1+4+9+16
        assert "instructions retired" in err

    def test_run_all_targets_agree(self, demo_file, capsys):
        outputs = set()
        for target in ("riscv", "straight", "straight-raw"):
            _, out, _ = run_cli(["run", demo_file, "--target", target], capsys)
            outputs.add(out)
        assert len(outputs) == 1

    def test_stdin_source(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "stdin", io.StringIO(DEMO))
        code, out, _ = run_cli(["run", "-", "--target", "riscv"], capsys)
        assert code == 0
        assert out.strip() == "30"

    def test_run_compiled_flags_agree(self, demo_file, capsys):
        outputs = set()
        for flag in ("--compiled", "--no-compiled"):
            code, out, _ = run_cli(["run", demo_file, flag], capsys)
            assert code == 0
            outputs.add(out)
        assert len(outputs) == 1

    def test_run_sampled_emits_stats_json(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["run", demo_file, "--sampled", "--core", "SS-2way",
             "--target", "riscv"], capsys
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["output"] == [30]
        assert payload["core"] == "SS-2way"
        # The demo is far too short to sample: exact fallback, flagged.
        assert payload["sampling"]["mode"] == "full-fallback"
        assert payload["sampling"]["params"]["seed"] == 0

    def test_run_sampled_unknown_core_fails(self, demo_file, capsys):
        code, _, err = run_cli(
            ["run", demo_file, "--sampled", "--core", "SS-9way"], capsys
        )
        assert code == 1
        assert "unknown core" in err

    def test_run_sampled_target_core_mismatch_fails(self, demo_file, capsys):
        # Default --target is straight; an SS core cannot simulate it.
        code, _, err = run_cli(
            ["run", demo_file, "--sampled", "--core", "SS-2way"], capsys
        )
        assert code == 1
        assert "simulates" in err


class TestSimulate:
    def test_simulate_emits_json(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["simulate", demo_file, "--core", "STRAIGHT-2way"], capsys
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["output"] == [30]
        assert payload["cycles"] > 0
        assert payload["core"] == "STRAIGHT-2way"

    def test_simulate_ss_core(self, demo_file, capsys):
        code, out, _ = run_cli(["simulate", demo_file, "--core", "SS-2way"], capsys)
        payload = json.loads(out)
        assert payload["target"] == "riscv"
        assert payload["rename_writes"] > 0

    def test_unknown_core_fails(self, demo_file, capsys):
        code, _, err = run_cli(["simulate", demo_file, "--core", "SS-9way"], capsys)
        assert code == 1
        assert "unknown core" in err


class TestExperiments:
    def test_single_cheap_experiment(self, capsys):
        code, out, _ = run_cli(["experiments", "table1"], capsys)
        assert code == 0
        assert "Table I" in out

    def test_unknown_experiment(self, capsys):
        code, _, err = run_cli(["experiments", "fig99"], capsys)
        assert code == 1
        assert "unknown experiment" in err


class TestBench:
    def test_smoke_reports_throughput_and_writes_json(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        sweep_path = tmp_path / "BENCH_sweep.json"
        code, out, _ = run_cli(
            ["bench", "--smoke", "--repeats", "1",
             "--workload", "branchy_div", "--json", str(out_path),
             "--sweep-json", str(sweep_path), "--sweep-jobs", "1"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload == json.loads(out_path.read_text())
        (report,) = payload["workloads"]
        assert report["workload"] == "branchy_div"
        assert report["instrs_per_sec"]["event_driven"] > 0
        assert report["skipped_cycles"] > 0
        assert (report["executed_cycles"] + report["skipped_cycles"]
                == report["cycles"])
        # The sweep/cache scorecard artifact (BENCH_sweep.json).
        scorecard = json.loads(sweep_path.read_text())
        assert scorecard["wall_s"]["cold"] > 0
        assert (scorecard["cycles_simulated"]["warm"]
                == scorecard["cycles_simulated"]["cold"] > 0)
        assert scorecard["warm_hit_rate"] == 1.0
        assert scorecard["cache"]["warm"]["results"]["hits"] > 0
        assert scorecard["predecode_speedup"] > 0
        assert payload["predecode"]["speedup"] == scorecard["predecode_speedup"]

    def test_bench_without_smoke_fails(self, capsys):
        code, _, err = run_cli(["bench"], capsys)
        assert code == 1
        assert "--smoke" in err

    def test_bench_unknown_workload_fails(self, capsys):
        code, _, err = run_cli(["bench", "--smoke", "--workload", "nope"],
                               capsys)
        assert code == 1
        assert "unknown bench workload" in err


class TestSweep:
    @pytest.fixture
    def scoped_cache(self):
        from repro.harness import cache as cache_mod
        from repro.harness.sweep import clear_memo

        previous = cache_mod.swap_state()
        clear_memo()
        yield
        clear_memo()
        cache_mod.swap_state(previous)

    def test_unknown_grid_name_fails(self, scoped_cache, tmp_path, capsys):
        code, _, err = run_cli(
            ["sweep", "fig99", "--cache-dir", str(tmp_path / "c"), "--quiet"],
            capsys,
        )
        assert code == 1
        assert "fig99" in err

    def test_cold_then_warm_run_meets_hit_rate(self, scoped_cache, tmp_path,
                                               capsys):
        cache_dir = str(tmp_path / "cache")
        report_path = tmp_path / "sweep.json"
        code, _, _ = run_cli(
            ["sweep", "fig16", "--jobs", "1", "--cache-dir", cache_dir,
             "--json", str(report_path), "--quiet"],
            capsys,
        )
        assert code == 0
        cold = json.loads(report_path.read_text())
        assert cold["manifest"]["failed"] == []
        assert cold["result_hit_rate"] == 0.0

        from repro.harness.sweep import clear_memo

        clear_memo()
        code, _, _ = run_cli(
            ["sweep", "fig16", "--jobs", "1", "--cache-dir", cache_dir,
             "--json", str(report_path), "--quiet", "--min-hit-rate", "0.9",
             "--full-results"],
            capsys,
        )
        assert code == 0
        warm = json.loads(report_path.read_text())
        assert warm["result_hit_rate"] == 1.0
        assert set(warm["results"]) == set(cold["manifest"]["requested"])

    def test_min_hit_rate_gate_fails_cold_runs(self, scoped_cache, tmp_path,
                                               capsys):
        code, _, err = run_cli(
            ["sweep", "fig16", "--jobs", "1",
             "--cache-dir", str(tmp_path / "cold"), "--quiet",
             "--min-hit-rate", "0.9", "--json", str(tmp_path / "r.json")],
            capsys,
        )
        assert code == 1
        assert "hit rate" in err


class TestVerify:
    def test_verify_clean_program(self, demo_file, capsys):
        code, out, _ = run_cli(["verify", demo_file], capsys)
        assert code == 0
        assert "0 error(s)" in out
        assert out.strip().endswith("OK")

    def test_verify_both_targets_with_lint(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["verify", demo_file, "--target", "both", "--lint"], capsys
        )
        assert code == 0
        assert "straight/md=1023" in out
        assert "straight-raw/md=1023" in out

    def test_verify_json_payload(self, demo_file, capsys):
        code, out, _ = run_cli(["verify", demo_file, "--json"], capsys)
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        (run,) = payload["runs"]
        assert run["counts"]["error"] == 0
        assert run["stats"]["functions"] >= 2

    def test_verify_mutants_default_campaign(self, capsys):
        code, out, _ = run_cli(
            ["verify", "--mutants", "8", "--seed", "5"], capsys
        )
        assert code == 0
        assert "mutation campaign" in out
        assert "mutants=8" in out

    def test_verify_without_input_fails(self, capsys):
        code, _, err = run_cli(["verify"], capsys)
        assert code == 2
        assert "--all-shipped" in err

    def test_verify_tight_distance_bound(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["verify", demo_file, "--max-distance", "15"], capsys
        )
        assert code == 0
        assert "md=15" in out

    def test_verify_riscv_isa(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["verify", demo_file, "--isa", "riscv", "--lint"], capsys
        )
        assert code == 0
        assert out.strip().endswith("OK")

    def test_verify_json_is_byte_stable(self, demo_file, capsys):
        runs = [
            run_cli(["verify", demo_file, "--isa", isa, "--lint", "--json"],
                    capsys)
            for isa in ("straight", "riscv", "bb")
            for _ in range(2)
        ]
        assert all(code == 0 for code, _, _ in runs)
        outs = [out for _, out, _ in runs]
        # Same invocation twice -> byte-identical JSON (satellite: stable
        # diagnostic ordering).
        assert outs[0] == outs[1]
        assert outs[2] == outs[3]
        assert outs[4] == outs[5]

    def test_verify_gpr_mutation_campaign(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["verify", demo_file, "--isa", "riscv", "--mutants", "6",
             "--seed", "3"],
            capsys,
        )
        assert code == 0
        assert "mutation campaign" in out
        assert "[riscv]" in out


class TestAnalyze:
    def test_analyze_text(self, demo_file, capsys):
        code, out, _ = run_cli(["analyze", demo_file], capsys)
        assert code == 0
        assert "static ILP [straight]" in out
        assert "ipc_bound(2-way)" in out
        assert out.strip().endswith("OK")

    def test_analyze_json_riscv(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["analyze", demo_file, "--isa", "riscv", "--json"], capsys
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["isa"] == "riscv"
        assert payload["verify"]["counts"]["error"] == 0
        assert float(payload["ilp"]["ipc_bound"]["4"]) > 0

    def test_analyze_workload(self, capsys):
        code, out, _ = run_cli(
            ["analyze", "--workload", "dhrystone", "--isa", "bb", "--json"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["ok"] is True
        assert payload["ilp"]["loops"]

    def test_analyze_without_input_fails(self, capsys):
        code, _, err = run_cli(["analyze"], capsys)
        assert code == 2
        assert "--workload" in err or "file" in err


def _fake_bench_report(overhead_pct):
    passes = [
        {"pass": name, "wall_s": 0.1, "cycles_simulated": 100,
         "cache": {"results": {"hits": 1, "misses": 0, "stores": 0,
                               "evictions": 0}},
         "results_from_cache": 1, "result_hit_rate": 1.0}
        for name in ("cold", "warm")
    ]
    return {
        "workloads": [{"workload": "branchy_div", "cycles": 100,
                       "skipped_cycles": 40, "executed_cycles": 60}],
        "sweep": {"passes": passes, "jobs": 1, "grid": ["fig11"],
                  "warm_speedup": 2.0},
        "predecode": {"speedup": 1.5},
        "best_speedup": 3.0,
        "observability": {"overhead_disabled_pct": overhead_pct},
    }


class TestTraceAndProfile:
    def test_functional_trace_unchanged(self, demo_file, capsys):
        code, out, _ = run_cli(["trace", demo_file, "--limit", "4"], capsys)
        assert code == 0
        assert len(out.strip().splitlines()) == 4
        assert "dest=" in out

    def test_trace_requires_some_input(self, capsys):
        with pytest.raises(SystemExit, match="--workload"):
            run_cli(["trace"], capsys)

    def test_pipeline_trace_writes_parseable_kanata(self, demo_file,
                                                    tmp_path, capsys):
        from repro.obs import parse_kanata

        log = tmp_path / "demo.kanata"
        code, out, _ = run_cli(
            ["trace", demo_file, "--core", "STRAIGHT-2way",
             "--kanata", str(log), "--attribution"],
            capsys,
        )
        assert code == 0
        assert "conserved" in out
        records = parse_kanata(log.read_text())
        assert records
        assert all(rec["retire"] is not None for rec in records.values())

    def test_pipeline_trace_json_from_workload(self, tmp_path, capsys):
        log = tmp_path / "w.kanata"
        code, out, _ = run_cli(
            ["trace", "--workload", "dhrystone", "--iterations", "2",
             "--core", "SS-2way", "--kanata", str(log),
             "--attribution", "--json"],
            capsys,
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["binary"] == "SS"
        assert payload["instructions_logged"] > 0
        assert payload["attribution"]["conserved"] is True
        assert log.exists()

    def test_trace_unknown_core_fails(self, demo_file, capsys):
        with pytest.raises(SystemExit, match="unknown core"):
            run_cli(["trace", demo_file, "--core", "SS-9way"], capsys)

    def test_profile_text(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["profile", demo_file, "--core", "STRAIGHT-2way", "--top", "3"],
            capsys,
        )
        assert code == 0
        assert "hot regions:" in out
        assert "slots_retiring" in out

    def test_profile_json_ss_core(self, demo_file, capsys):
        code, out, _ = run_cli(
            ["profile", demo_file, "--core", "SS-2way", "--json"], capsys
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["binary"] == "SS"
        assert payload["attribution"]["conserved"] is True
        assert payload["profile"]["total_commits"] > 0


class TestBenchObsGate:
    def test_gate_passes_under_budget(self, tmp_path, capsys, monkeypatch):
        import repro.harness.bench as bench_mod

        monkeypatch.setattr(bench_mod, "bench_smoke",
                            lambda **kwargs: _fake_bench_report(1.25))
        code, _, err = run_cli(
            ["bench", "--smoke", "--sweep-json",
             str(tmp_path / "s.json"), "--max-obs-overhead", "5.0"],
            capsys,
        )
        assert code == 0
        assert "within" in err

    def test_gate_fails_over_budget(self, tmp_path, capsys, monkeypatch):
        import repro.harness.bench as bench_mod

        monkeypatch.setattr(bench_mod, "bench_smoke",
                            lambda **kwargs: _fake_bench_report(9.75))
        code, _, err = run_cli(
            ["bench", "--smoke", "--sweep-json",
             str(tmp_path / "s.json"), "--max-obs-overhead", "5.0"],
            capsys,
        )
        assert code == 1
        assert "exceeds" in err
