"""Liveness/dead-code, value-range, and static-ILP passes."""

from repro.analysis import analyze_ilp, analyze_program, support_for
from repro.analysis.cfg import build_cfg
from repro.analysis.passes import (
    gpr_dead_defs,
    gpr_value_ranges,
)
from repro.frontend import compile_source
from repro.compiler import compile_to_riscv
from repro.riscv.verify import verify_program
from repro.riscv import link_program, parse_assembly, startup_stub

SOURCE = """
int helper(int x) { return x * 2 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += helper(i);
    __out(acc);
    return 0;
}
"""


def compiled_program(source=SOURCE):
    return compile_to_riscv(compile_source(source)).link()


def asm_program(body):
    return link_program([startup_stub(), parse_assembly(body)])


def lint_codes(report):
    return {d.code for d in report.diagnostics}


class TestDeadDefs:
    def test_dead_write_is_flagged(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 7
    addi a0, zero, 1
    jalr zero, ra, 0
"""), lint=True)
        assert "ANL101" in lint_codes(report)
        assert not report.has_errors()

    def test_consumed_write_is_not_flagged(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 7
    add a0, t0, zero
    jalr zero, ra, 0
"""), lint=True)
        assert "ANL101" not in lint_codes(report)

    def test_write_live_across_branch_is_not_flagged(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 7
    beq a0, zero, out
    addi t0, zero, 9
out:
    add a0, t0, zero
    jalr zero, ra, 0
"""), lint=True)
        assert "ANL101" not in lint_codes(report)

    def test_dead_defs_report_index_and_reg(self):
        program = asm_program("""
main:
    addi t6, zero, 7
    addi a0, zero, 1
    jalr zero, ra, 0
""")
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        dead = gpr_dead_defs(program, support, cfg)
        assert any(reg == 31 for _, reg in dead)  # t6


class TestValueRanges:
    def test_constant_propagates(self):
        program = asm_program("""
main:
    addi t0, zero, 5
    addi t1, t0, 3
    add a0, t1, zero
    jalr zero, ra, 0
""")
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        ranges = gpr_value_ranges(program, support, cfg)
        add_index = next(
            i for i, instr in enumerate(program.instrs)
            if instr.mnemonic == "ADD"
        )
        assert ranges[add_index][6] == (8, 8)  # t1 = 5 + 3

    def test_loop_counter_widens_to_top(self):
        program = compiled_program()
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        ranges = gpr_value_ranges(program, support, cfg)
        # Every tracked interval is well-formed; unbounded counters drop out.
        for entry in ranges.values():
            for lo, hi in entry.values():
                assert lo <= hi

    def test_anl102_constant_branch(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 3
    beq t0, zero, out
    addi a0, zero, 1
out:
    jalr zero, ra, 0
"""), lint=True)
        assert "ANL102" in lint_codes(report)

    def test_anl103_division_by_constant_zero(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 9
    div a0, t0, zero
    jalr zero, ra, 0
"""), lint=True)
        assert "ANL103" in lint_codes(report)

    def test_varying_branch_not_flagged(self):
        report = verify_program(compiled_program(), lint=True)
        assert "ANL102" not in lint_codes(report)
        assert "ANL103" not in lint_codes(report)


class TestStaticIlp:
    def test_simple_loop_recurrence(self):
        program = asm_program("""
main:
    addi t0, zero, 0
    addi t1, zero, 10
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    add a0, t0, zero
    jalr zero, ra, 0
""")
        report = analyze_ilp(program, support_for("riscv"))
        loop = next(x for x in report.loops if x.function == "main")
        assert loop.instructions == 2
        assert loop.recurrence == 1  # t0 -> t0 chain, alu latency 1
        assert loop.ipc_limit == 2.0
        assert report.ipc_bound(4) == 2.0  # the loop caps a 4-wide machine
        assert report.ipc_bound(2) == 2.0

    def test_div_recurrence_throttles_below_width(self):
        program = asm_program("""
main:
    addi t0, zero, 64
    addi t1, zero, 2
loop:
    div t0, t0, t1
    addi t2, t0, 1
    bne t0, zero, loop
    add a0, t2, zero
    jalr zero, ra, 0
""")
        report = analyze_ilp(program, support_for("riscv"))
        loop = next(x for x in report.loops if x.function == "main")
        assert loop.recurrence == 12  # div latency dominates the recurrence
        assert loop.ipc_limit == 3 / 12
        assert report.ipc_bound(2) == 0.25

    def test_block_critical_path_bounds_local_ilp(self):
        program = compiled_program()
        report = analyze_ilp(program, support_for("riscv"))
        assert report.blocks
        for entry in report.blocks:
            if entry["instructions"]:
                assert 1 <= entry["critical_path"]
                # A chain cannot be longer than every instruction at the
                # slowest latency in the table (div = 12).
                assert entry["critical_path"] <= entry["instructions"] * 12
                assert entry["local_ilp"] >= entry["instructions"] / (
                    entry["instructions"] * 12
                )

    def test_all_isas_produce_bounds(self):
        from repro.compiler import compile_to_straight
        from repro.compiler.bb_backend import compile_to_bb

        module = compile_source(SOURCE)
        for isa, program in (
            ("straight", compile_to_straight(module, max_distance=1023).link()),
            ("riscv", compile_to_riscv(module).link()),
            ("bb", compile_to_bb(module).link()),
        ):
            report = analyze_ilp(program, support_for(isa))
            assert report.loops, isa  # the for loop is found everywhere
            for width in (2, 4):
                assert 0 < report.ipc_bound(width) <= width

    def test_as_dict_shape(self):
        program = compiled_program()
        payload = analyze_ilp(program, support_for("riscv")).as_dict()
        assert payload["isa"] == "riscv"
        assert {"blocks", "loops", "ipc_bound"} <= set(payload)
        assert set(payload["ipc_bound"]) == {"2", "4"}


class TestAnalyzeBundle:
    def test_bundle_combines_verify_and_ilp(self):
        program = compiled_program()
        bundle = analyze_program(program, "riscv", name="demo")
        assert bundle.ok
        payload = bundle.as_dict()
        assert payload["name"] == "demo"
        assert payload["verify"]["counts"]["error"] == 0
        assert payload["ilp"]["ipc_bound"]
        assert "analyze demo [riscv]" in bundle.text()

    def test_bundle_is_byte_stable(self):
        import json

        program = compiled_program()
        first = analyze_program(program, "riscv")
        second = analyze_program(program, "riscv")
        assert json.dumps(first.as_dict()) == json.dumps(second.as_dict())
        assert first.text() == second.text()

    def test_straight_bundle(self):
        from repro.compiler import compile_to_straight

        program = compile_to_straight(
            compile_source(SOURCE), max_distance=1023
        ).link()
        bundle = analyze_program(program, "straight")
        assert bundle.ok
        assert bundle.ilp_report.loops
