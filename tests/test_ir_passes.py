"""Transformation pass tests: mem2reg, const-fold, DCE, simplify-CFG, edges."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import wrap32, to_signed
from repro.ir import Module, IRBuilder, ConstantInt, verify_function
from repro.ir.instructions import Phi, Alloca, CondBr, Br
from repro.ir.passes import (
    promote_allocas,
    fold_constants,
    eliminate_dead_code,
    simplify_cfg,
    split_critical_edges,
    default_pipeline,
)
from repro.ir.passes.constfold import eval_binop, eval_icmp

u32 = st.integers(min_value=0, max_value=0xFFFF_FFFF)


class TestEvalBinop:
    """eval_binop is the single source of ALU truth for IR folding and both
    functional simulators, so its semantics get their own scrutiny."""

    @given(u32, u32)
    def test_add_matches_wrap(self, a, b):
        assert eval_binop("add", a, b) == wrap32(a + b)

    @given(u32, u32)
    def test_sub_matches_wrap(self, a, b):
        assert eval_binop("sub", a, b) == wrap32(a - b)

    @given(u32, u32)
    def test_mul_matches_wrap(self, a, b):
        assert eval_binop("mul", a, b) == wrap32(a * b)

    @given(u32, u32)
    def test_sdiv_truncates_toward_zero(self, a, b):
        result = eval_binop("sdiv", a, b)
        sa, sb = to_signed(a), to_signed(b)
        if sb == 0:
            assert result == 0xFFFF_FFFF  # RV32IM div-by-zero
        elif sa == -(2**31) and sb == -1:
            assert result == 0x8000_0000  # signed overflow case
        else:
            assert to_signed(result) == int(sa / sb)

    @given(u32, u32)
    def test_srem_sign_follows_dividend(self, a, b):
        sa, sb = to_signed(a), to_signed(b)
        result = to_signed(eval_binop("srem", a, b))
        if sb == 0:
            assert result == sa
        elif not (sa == -(2**31) and sb == -1):
            assert result == sa - int(sa / sb) * sb
            if result != 0:
                assert (result < 0) == (sa < 0)

    @given(u32, u32)
    def test_udiv_urem_identity(self, a, b):
        if b != 0:
            q = eval_binop("udiv", a, b)
            r = eval_binop("urem", a, b)
            assert wrap32(q * b + r) == a
            assert r < b

    @given(u32, st.integers(min_value=0, max_value=255))
    def test_shifts_mask_amount(self, a, amount):
        assert eval_binop("shl", a, amount) == wrap32(a << (amount & 31))
        assert eval_binop("lshr", a, amount) == a >> (amount & 31)
        assert eval_binop("ashr", a, amount) == wrap32(
            to_signed(a) >> (amount & 31)
        )

    @given(u32, u32)
    def test_icmp_signed_unsigned_agree_on_equal_sign(self, a, b):
        if (a >> 31) == (b >> 31):
            assert eval_icmp("slt", a, b) == eval_icmp("ult", a, b)

    @given(u32, u32)
    def test_icmp_total_order(self, a, b):
        assert eval_icmp("slt", a, b) + eval_icmp("sgt", a, b) + eval_icmp(
            "eq", a, b
        ) == 1


def _counting_module():
    """A loop in naive alloca form (what the front end produces)."""
    module = Module("t")
    func = module.add_function("count", ["n"])
    entry = func.add_block("entry")
    loop = func.add_block("loop")
    body = func.add_block("body")
    done = func.add_block("done")
    builder = IRBuilder()
    builder.set_insert_point(entry)
    i_slot = builder.alloca(1, "i")
    builder.store(builder.const(0), i_slot)
    builder.br(loop)
    builder.set_insert_point(loop)
    i = builder.load(i_slot)
    cond = builder.icmp("slt", i, func.params[0])
    builder.cond_br(cond, body, done)
    builder.set_insert_point(body)
    builder.store(builder.add(builder.load(i_slot), builder.const(1)), i_slot)
    builder.br(loop)
    builder.set_insert_point(done)
    builder.ret(builder.load(i_slot))
    return module, func


class TestMem2Reg:
    def test_promotes_loop_counter_to_phi(self):
        module, func = _counting_module()
        promoted = promote_allocas(func)
        verify_function(func)
        assert promoted == 1
        assert not any(
            isinstance(i, Alloca) for i in func.instructions()
        )
        loop = [b for b in func.blocks if b.name == "loop"][0]
        assert len(loop.phis()) == 1

    def test_escaping_alloca_not_promoted(self):
        module = Module("t")
        func = module.add_function("f")
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        slot = builder.alloca(1, "x")
        builder.store(builder.const(1), slot)
        builder.call("g", [slot], returns_value=False)  # address escapes
        builder.ret(builder.load(slot))
        assert promote_allocas(func) == 0

    def test_array_alloca_not_promoted(self):
        module = Module("t")
        func = module.add_function("f")
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        arr = builder.alloca(4, "arr")
        builder.store(builder.const(1), arr)
        builder.ret(builder.load(arr))
        assert promote_allocas(func) == 0

    def test_load_before_store_gets_undef(self):
        module = Module("t")
        func = module.add_function("f")
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        slot = builder.alloca(1, "x")
        loaded = builder.load(slot)
        builder.ret(loaded)
        promote_allocas(func)
        verify_function(func)


class TestConstFold:
    def _fold_one(self, op, a, b):
        module = Module("t")
        func = module.add_function("f")
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        value = builder.binop(op, ConstantInt(a), ConstantInt(b))
        builder.ret(value)
        fold_constants(func)
        ret = func.entry.instructions[-1]
        assert isinstance(ret.value, ConstantInt)
        return ret.value.value

    def test_folds_add(self):
        assert self._fold_one("add", 2, 3) == 5

    def test_folds_wrapping(self):
        assert self._fold_one("add", 0xFFFF_FFFF, 1) == 0

    def test_identity_add_zero(self):
        module = Module("t")
        func = module.add_function("f", ["x"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        value = builder.add(func.params[0], ConstantInt(0))
        builder.ret(value)
        fold_constants(func)
        assert func.entry.instructions[-1].value is func.params[0]

    def test_mul_by_zero(self):
        module = Module("t")
        func = module.add_function("f", ["x"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        value = builder.mul(func.params[0], ConstantInt(0))
        builder.ret(value)
        fold_constants(func)
        assert func.entry.instructions[-1].value == ConstantInt(0)

    def test_sub_self_is_zero(self):
        module = Module("t")
        func = module.add_function("f", ["x"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        value = builder.sub(func.params[0], func.params[0])
        builder.ret(value)
        fold_constants(func)
        assert func.entry.instructions[-1].value == ConstantInt(0)


class TestDCE:
    def test_removes_dead_chain(self):
        module = Module("t")
        func = module.add_function("f", ["x"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        a = builder.add(func.params[0], ConstantInt(1))
        b = builder.mul(a, ConstantInt(2))  # dead chain: a -> b
        builder.ret(func.params[0])
        removed = eliminate_dead_code(func)
        assert removed == 2
        assert len(func.entry.instructions) == 1

    def test_keeps_side_effects(self):
        module = Module("t")
        func = module.add_function("f", ["p"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        builder.store(ConstantInt(1), func.params[0])
        builder.output(ConstantInt(2))
        builder.ret(ConstantInt(0))
        assert eliminate_dead_code(func) == 0
        assert len(func.entry.instructions) == 3


class TestSimplifyCfg:
    def test_folds_constant_condbr(self):
        module = Module("t")
        func = module.add_function("f")
        entry = func.add_block("entry")
        taken = func.add_block("taken")
        dead = func.add_block("dead")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.cond_br(ConstantInt(1), taken, dead)
        builder.set_insert_point(taken)
        builder.ret(ConstantInt(1))
        builder.set_insert_point(dead)
        builder.ret(ConstantInt(0))
        simplify_cfg(func)
        verify_function(func)
        assert dead not in func.blocks
        # entry+taken merged into a straight line
        assert len(func.blocks) == 1

    def test_collapses_trivial_phi(self):
        module = Module("t")
        func = module.add_function("f", ["x"])
        entry = func.add_block("entry")
        merge = func.add_block("merge")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.br(merge)
        builder.set_insert_point(merge)
        phi = builder.phi()
        phi.add_incoming(func.params[0], entry)
        builder.ret(phi)
        simplify_cfg(func)
        verify_function(func)
        assert not any(isinstance(i, Phi) for i in func.instructions())

    def test_same_target_condbr_becomes_br(self):
        module = Module("t")
        func = module.add_function("f", ["c"])
        entry = func.add_block("entry")
        target = func.add_block("target")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.cond_br(func.params[0], target, target)
        builder.set_insert_point(target)
        builder.ret(ConstantInt(0))
        simplify_cfg(func)
        verify_function(func)


class TestSplitCriticalEdges:
    def test_splits_loop_exit_edge(self):
        module = Module("t")
        func = module.add_function("f", ["c"])
        entry = func.add_block("entry")
        merge = func.add_block("merge")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        # entry has two successors, both the same merge-ish target pattern:
        other = func.add_block("other")
        builder.cond_br(func.params[0], merge, other)
        builder.set_insert_point(other)
        builder.br(merge)
        builder.set_insert_point(merge)
        phi = builder.phi()
        phi.add_incoming(ConstantInt(1), entry)
        phi.add_incoming(ConstantInt(2), other)
        builder.ret(phi)
        split = split_critical_edges(func)
        verify_function(func)
        assert split == 1
        preds = func.predecessors()[merge]
        for pred in preds:
            assert len(set(pred.successors())) == 1

    def test_idempotent(self):
        module, func = _counting_module()
        promote_allocas(func)
        split_critical_edges(func)
        assert split_critical_edges(func) == 0


class TestDefaultPipeline:
    def test_pipeline_reaches_fixed_point(self, small_module):
        rewrites = default_pipeline().run(small_module)
        assert rewrites == 0  # already optimized by compile_source
