"""Lexer and parser tests for the mini-C front end."""

import pytest

from repro.common.errors import CompileError
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse
from repro.frontend import ast_nodes as ast


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source) if t.kind != "eof"]


class TestLexer:
    def test_numbers(self):
        tokens = tokenize("42 0x2A 0")
        assert [t.value for t in tokens[:-1]] == [42, 42, 0]

    def test_char_literals(self):
        tokens = tokenize("'A' '\\n' '\\0'")
        assert [t.value for t in tokens[:-1]] == [65, 10, 0]

    def test_identifiers_vs_keywords(self):
        assert kinds("int foo while whale") == [
            ("keyword", "int"),
            ("ident", "foo"),
            ("keyword", "while"),
            ("ident", "whale"),
        ]

    def test_maximal_munch_operators(self):
        assert [t.text for t in tokenize("a<<=b>>c<=d") if t.kind == "op"] == [
            "<<=",
            ">>",
            "<=",
        ]

    def test_comments_stripped(self):
        assert kinds("a // line\nb /* block\nmore */ c") == [
            ("ident", "a"),
            ("ident", "b"),
            ("ident", "c"),
        ]

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_unterminated_comment(self):
        with pytest.raises(CompileError):
            tokenize("/* never ends")

    def test_oversized_literal(self):
        with pytest.raises(CompileError, match="exceeds 32 bits"):
            tokenize("4294967296")

    def test_unexpected_character(self):
        with pytest.raises(CompileError):
            tokenize("a @ b")


def parse_source(source):
    return parse(tokenize(source))


class TestParser:
    def test_function_with_params(self):
        program = parse_source("int f(int a, uint* b) { return a; }")
        func = program.decls[0]
        assert isinstance(func, ast.FuncDef)
        assert func.name == "f"
        assert func.params[0].ctype.base == "int"
        assert func.params[1].ctype.pointer_depth == 1

    def test_void_function_and_void_params(self):
        program = parse_source("void f(void) { return; }")
        func = program.decls[0]
        assert func.return_type.is_void()
        assert func.params == []

    def test_global_array_with_initializer(self):
        program = parse_source("int g[4] = {1, 2, -3};")
        decl = program.decls[0]
        assert decl.array_size == 4
        assert decl.initializer == [1, 2, -3]

    def test_global_array_size_inferred(self):
        program = parse_source("int g[] = {7, 8};" .replace("[]", "[2]"))
        assert program.decls[0].array_size == 2

    def test_precedence(self):
        program = parse_source("int f() { return 1 + 2 * 3; }")
        ret = program.decls[0].body.statements[0]
        assert isinstance(ret.value, ast.Binary)
        assert ret.value.op == "+"
        assert ret.value.rhs.op == "*"

    def test_ternary_right_associative(self):
        program = parse_source("int f(int a) { return a ? 1 : a ? 2 : 3; }")
        ret = program.decls[0].body.statements[0]
        assert isinstance(ret.value, ast.Ternary)
        assert isinstance(ret.value.iffalse, ast.Ternary)

    def test_assignment_right_associative(self):
        program = parse_source("int f(int a, int b) { a = b = 1; return a; }")
        stmt = program.decls[0].body.statements[0]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_for_with_decl_init(self):
        program = parse_source("int f() { for (int i = 0; i < 3; i++) {} return 0; }")
        loop = program.decls[0].body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.step, ast.Unary)

    def test_postfix_and_prefix_increment(self):
        program = parse_source("int f(int a) { ++a; a--; return a; }")
        stmts = program.decls[0].body.statements
        assert stmts[0].expr.op == "++pre"
        assert stmts[1].expr.op == "--post"

    def test_index_chains(self):
        program = parse_source("int f(int** p) { return p[1][2]; }")
        ret = program.decls[0].body.statements[0]
        assert isinstance(ret.value, ast.IndexExpr)
        assert isinstance(ret.value.base, ast.IndexExpr)

    def test_do_while(self):
        program = parse_source("int f() { int i = 0; do { i++; } while (i < 3); return i; }")
        assert isinstance(program.decls[0].body.statements[1], ast.DoWhile)

    def test_missing_semicolon(self):
        with pytest.raises(CompileError, match="expected"):
            parse_source("int f() { return 1 }")

    def test_pointer_to_void_rejected(self):
        with pytest.raises(CompileError, match="void"):
            parse_source("void* f() { }")

    def test_local_array_initializer_rejected(self):
        with pytest.raises(CompileError, match="array initializers"):
            parse_source("int f() { int a[3] = 1; return 0; }")

    def test_zero_size_array_rejected(self):
        with pytest.raises(CompileError, match="positive"):
            parse_source("int g[0];")
