"""The ISA plugin layer: registry behavior, descriptor invariants, the
``bb`` BasicBlocker ISA end-to-end (compile -> static verify -> lockstep
co-sim -> timing sim on the paper workloads), the bbify pass and block
verifier against corrupted programs, and the encoding-density report."""

import pytest

from repro import isa as isa_registry
from repro.common.errors import UnknownIsaError
from repro.frontend import compile_source
from tests.conftest import SMALL_PROGRAM, SMALL_PROGRAM_OUTPUT


# ------------------------------------------------------------- registry


class TestRegistry:
    def test_builtin_names_in_registration_order(self):
        assert isa_registry.names() == ("straight", "riscv", "bb")

    def test_get_returns_named_descriptor(self):
        for name in isa_registry.names():
            assert isa_registry.get(name).name == name

    def test_unknown_isa_error_lists_registered_names(self):
        with pytest.raises(UnknownIsaError) as info:
            isa_registry.get("mips")
        message = str(info.value)
        for name in isa_registry.names():
            assert name in message

    def test_target_map_covers_variant_targets(self):
        mapping = isa_registry.target_map()
        assert set(mapping) >= {"straight", "straight-raw", "riscv", "bb"}
        descriptor, opts = mapping["straight-raw"]
        assert descriptor.name == "straight"
        assert opts["redundancy_elimination"] is False

    def test_resolve_target_unknown_raises(self):
        with pytest.raises(UnknownIsaError):
            isa_registry.resolve_target("straight-re-minus")

    def test_for_config_maps_cores_to_descriptors(self):
        from repro.core.configs import ALL_CORES

        for factory in ALL_CORES.values():
            config = factory()
            descriptor = isa_registry.for_config(config)
            assert descriptor.frontend == config.frontend_model

    def test_register_and_lookup_third_party(self):
        base = isa_registry.get("riscv")
        fake = isa_registry.IsaDescriptor(
            "fake", "Fake ISA", "gpr", base.opcodes, base.format_fields,
            base.parse_assembly, base.link, base.startup_stub, base.encode,
            base.decode, base.make_interpreter, base.compile_module,
            binary_labels={"FAKE": {}}, targets={"fake": {}},
            frontend="rename", config_factories=dict(base.config_factories),
        )
        try:
            isa_registry.register(fake)
            assert isa_registry.get("fake") is fake
            assert "fake" in isa_registry.names()
        finally:
            isa_registry._REGISTRY.pop("fake", None)


class TestDescriptorInvariants:
    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_format_fields_cover_opcode_table(self, isa_name):
        descriptor = isa_registry.get(isa_name)
        for spec in descriptor.opcodes.values():
            assert spec.fmt in descriptor.format_fields
            payload = descriptor.format_payload_bits(spec.fmt)
            assert 0 <= payload <= descriptor.word_bits

    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_binary_labels_subset_of_target_opts(self, isa_name):
        descriptor = isa_registry.get(isa_name)
        assert descriptor.binary_labels
        assert descriptor.targets
        target_opts = list(descriptor.targets.values())
        for opts in descriptor.binary_labels.values():
            assert opts in target_opts

    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_default_label_and_config_factories(self, isa_name):
        descriptor = isa_registry.get(isa_name)
        assert descriptor.default_label == next(iter(descriptor.binary_labels))
        assert set(descriptor.config_factories) == {"2way", "4way"}
        for factory in descriptor.config_factories.values():
            assert factory().frontend_model == descriptor.frontend

    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_compile_and_interpret_small_program(self, isa_name):
        descriptor = isa_registry.get(isa_name)
        compilation = descriptor.compile_module(
            compile_source(SMALL_PROGRAM), max_distance=1023
        )
        interp = descriptor.make_interpreter(compilation.link())
        assert interp.run(2_000_000).status in ("halt", "exit")
        assert interp.output == SMALL_PROGRAM_OUTPUT


# ------------------------------------------------- bbify + block verifier


def _bb_program(source=SMALL_PROGRAM):
    descriptor = isa_registry.get("bb")
    compilation = descriptor.compile_module(
        compile_source(source), max_distance=1023
    )
    return compilation.link()


class TestBbVerifier:
    def test_clean_program_verifies(self):
        from repro.bb.verify import verify_program

        program = _bb_program()
        report = verify_program(program)
        assert not report.has_errors()
        assert report.stats["blocks"] > 0
        assert "0 error(s)" in report.summary()

    def test_corrupted_header_count_detected(self):
        from repro.bb.verify import verify_program

        program = _bb_program()
        program.instrs = list(program.instrs)
        header = next(
            i for i, instr in enumerate(program.instrs)
            if instr.mnemonic == "BB"
        )
        program.instrs[header].imm += 1
        report = verify_program(program)
        assert report.has_errors()
        assert any(d.code == "BBV002" for d in report.diagnostics)

    def test_missing_entry_header_detected(self):
        from repro.bb.verify import verify_program

        program = _bb_program()
        program.instrs = list(program.instrs)
        del program.instrs[0]  # the entry BB header
        report = verify_program(program)
        assert any(d.code == "BBV001" for d in report.diagnostics)

    def test_header_stripped_after_branch_detected(self):
        from repro.bb.bbify import CONTROL_CLASSES
        from repro.bb.verify import verify_program

        program = _bb_program()
        program.instrs = list(program.instrs)
        victim = next(
            i for i, instr in enumerate(program.instrs)
            if instr.op_class in CONTROL_CLASSES
            and i + 2 < len(program.instrs)
        )
        del program.instrs[victim + 1]  # the following BB header
        report = verify_program(program)
        assert report.has_errors()
        codes = {d.code for d in report.diagnostics}
        assert "BBV003" in codes or "BBV002" in codes

    def test_report_duck_types_diagnostic_surface(self):
        from repro.bb.verify import verify_program

        program = _bb_program()
        program.instrs = list(program.instrs)
        program.instrs[0].imm += 2
        report = verify_program(program)
        assert report.counts()["error"] == len(report.errors())
        payload = report.as_dict()
        assert payload["counts"]["error"] >= 1
        diag = payload["diagnostics"][0]
        assert diag["code"] in ("BBV001", "BBV002", "BBV003", "BBV004")
        assert "pc=" in diag["location"]
        assert diag["code"] in report.text()

    def test_bbify_preserves_semantics(self):
        """bbifying plain RV32IM output changes headers only, not results."""
        from repro.bb.bbify import bbify_unit

        descriptor = isa_registry.get("riscv")
        module = compile_source(SMALL_PROGRAM)
        compilation = descriptor.compile_module(module, max_distance=1023)
        unit = bbify_unit(compilation.units[0])
        mnemonics = [
            item.mnemonic for kind, item in unit.items if kind == "instr"
        ]
        headers = mnemonics.count("BB")
        assert headers > 0
        originals = [m for m in mnemonics if m != "BB"]
        assert originals == [
            item.mnemonic
            for kind, item in compilation.units[0].items
            if kind == "instr"
        ]


# ---------------------------------------- bb end-to-end: paper workloads


@pytest.mark.parametrize("workload", ["dhrystone", "coremark"])
def test_bb_runs_paper_workloads_end_to_end(workload):
    """compile -> static verify -> lockstep co-sim -> timing sim, per ISA."""
    from repro.core.api import simulate
    from repro.workloads import build_workload

    descriptor = isa_registry.get("bb")
    build = build_workload(workload, 2)
    binaries = build.all()
    assert "BB" in binaries
    binary = binaries[descriptor.default_label]

    # Static verify: the linked workload satisfies the block invariants.
    report = descriptor.static_check(binary.program)
    assert report is not None and not report.has_errors()

    # Functional equivalence against the other registered ISAs.
    outputs = {}
    for other in isa_registry.descriptors():
        interp = binaries[other.default_label].interpreter()
        assert interp.run(50_000_000).status in ("halt", "exit")
        outputs[other.name] = interp.output
    assert outputs["bb"] == outputs["riscv"] == outputs["straight"]

    # Lockstep co-sim + timing: the guarded run commits every instruction
    # against the ISS golden model and completes.
    config = descriptor.config_factories["2way"]()
    result = simulate(binary, config, warm_caches=True, guardrails=True)
    assert result.output == outputs["bb"]
    assert result.cycles > 0
    assert result.guardrail_report["lockstep"]["golden_halted"]


# ------------------------------------------------------ density report


class TestDensityReport:
    def test_rows_cover_every_isa(self):
        from repro.isa.density import density_report

        report = density_report(workloads=("dhrystone",), iterations=2)
        rows = report["rows"]
        assert {row["isa"] for row in rows} == set(isa_registry.names())
        for row in rows:
            assert row["static_instrs"] > 0
            assert row["dynamic_instrs"] > 0
            assert 0 < row["utilization"] <= 1.0
            assert row["code_bytes"] == row["static_instrs"] * 4
        by_isa = {row["isa"]: row for row in rows}
        # BasicBlocker pays for hazard-free fetch with header instructions.
        assert by_isa["bb"]["code_size_vs_ss"] > 1.0
        assert by_isa["riscv"]["code_size_vs_ss"] == 1.0
        assert "Encoding density" in report["text"]

    def test_payload_bits_from_descriptor_tables(self):
        from repro.isa.density import payload_bits_by_mnemonic

        for descriptor in isa_registry.descriptors():
            bits = payload_bits_by_mnemonic(descriptor)
            assert set(bits) == set(descriptor.opcodes)
            assert all(0 <= b <= 32 for b in bits.values())
