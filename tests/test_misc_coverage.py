"""Coverage for remaining corners: CLI trace, regalloc frames, isel errors,
config cache-building, runner cache keys, and the simplify-CFG merger."""

import pytest

from repro.common.errors import CompileError
from repro.frontend import compile_source
from repro.tools.cli import main as cli_main
from repro.core.configs import ss_2way, straight_2way
from repro.harness.runner import timed_run


class TestCliTrace:
    DEMO = "int main() { __out(1 + 2); return 0; }"

    @pytest.fixture
    def demo_file(self, tmp_path):
        path = tmp_path / "t.c"
        path.write_text(self.DEMO)
        return str(path)

    def test_trace_lists_entries(self, demo_file, capsys):
        assert cli_main(["trace", demo_file]) == 0
        out = capsys.readouterr().out
        assert "JAL" in out and "HALT" in out
        assert "srcs=[" in out

    def test_trace_limit(self, demo_file, capsys):
        assert cli_main(["trace", demo_file, "--limit", "2"]) == 0
        captured = capsys.readouterr()
        assert len(captured.out.strip().splitlines()) == 2
        assert "more" in captured.err

    def test_trace_riscv_target(self, demo_file, capsys):
        assert cli_main(["trace", demo_file, "--target", "riscv"]) == 0
        assert "ECALL" in capsys.readouterr().out


class TestConfigBuilders:
    def test_hierarchy_matches_table1_geometry(self):
        hierarchy = ss_2way().build_hierarchy()
        assert hierarchy.l1d.num_sets == 32 * 1024 // (4 * 64)
        assert hierarchy.l1i.hit_latency == 4
        assert hierarchy.l2.hit_latency == 12
        assert hierarchy.l3 is None
        assert hierarchy.mem_latency == 200

    def test_4way_has_l3(self):
        from repro.core.configs import ss_4way

        hierarchy = ss_4way().build_hierarchy()
        assert hierarchy.l3 is not None
        assert hierarchy.l3.hit_latency == 42

    def test_copy_is_deep(self):
        base = straight_2way()
        clone = base.copy(rob_entries=128)
        assert base.rob_entries == 64
        assert clone.rob_entries == 128
        clone.units["alu"] = 99
        assert base.units["alu"] == 2


class TestRunnerCacheKeys:
    def test_different_config_not_conflated(self):
        a = timed_run("dhrystone", "SS", ss_2way())
        b = timed_run("dhrystone", "SS", ss_2way(ideal_recovery=True,
                                                 name="SS-2way-ideal"))
        assert a is not b
        assert b.cycles <= a.cycles

    def test_predictor_in_key(self):
        a = timed_run("dhrystone", "SS", ss_2way())
        b = timed_run("dhrystone", "SS", ss_2way(predictor="tage"))
        assert a is not b


class TestBackendErrorPaths:
    def test_too_many_riscv_args_rejected(self):
        params = ", ".join(f"int a{i}" for i in range(9))
        args = ", ".join(str(i) for i in range(9))
        source = f"""
        int f({params}) {{ return a0; }}
        int main() {{ return f({args}); }}
        """
        from repro.compiler import compile_to_riscv

        with pytest.raises(CompileError, match="parameters|arguments"):
            compile_to_riscv(compile_source(source))

    def test_straight_supports_many_args(self):
        """STRAIGHT's register-distance convention has no 8-arg ABI limit."""
        params = ", ".join(f"int a{i}" for i in range(10))
        total = " + ".join(f"a{i}" for i in range(10))
        args = ", ".join(str(i + 1) for i in range(10))
        source = f"""
        int f({params}) {{ return {total}; }}
        int main() {{ __out(f({args})); return 0; }}
        """
        from repro.compiler import compile_to_straight
        from repro.straight import StraightInterpreter

        compilation = compile_to_straight(compile_source(source))
        interp = StraightInterpreter(compilation.link())
        interp.run(10_000)
        assert interp.output == [sum(range(1, 11))]


class TestInterpreterLimits:
    def test_straight_step_limit_reported(self):
        source = "int main() { while (1) {} return 0; }"
        from repro.core.api import build

        binaries = build(source)
        interp = binaries.straight_re.interpreter()
        result = interp.run(max_steps=500)
        assert result.status == "limit"
        assert result.steps == 500

    def test_riscv_step_limit_reported(self):
        source = "int main() { while (1) {} return 0; }"
        from repro.core.api import build

        binaries = build(source)
        interp = binaries.riscv.interpreter()
        result = interp.run(max_steps=500)
        assert result.status == "limit"
