"""Semantic analysis and AST->IR lowering tests."""

import pytest

from repro.common.errors import CompileError
from repro.frontend import compile_source, tokenize, parse, analyze
from repro.ir.instructions import Phi, Call, Output


def check(source):
    return analyze(parse(tokenize(source)))


class TestSemaAccepts:
    def test_pointer_arithmetic(self):
        check("int f(int* p, int n) { return *(p + n) + p[n]; }")

    def test_unsigned_mix(self):
        check("uint f(uint a, int b) { return a / b + (a >> 3); }")

    def test_address_of(self):
        check("void g(int* p) { *p = 1; } int f() { int x; g(&x); return x; }")

    def test_null_pointer_literal(self):
        check("int f(int* p) { if (p == 0) return 1; return 0; }")

    def test_forward_call(self):
        check("int f() { return g(); } int g() { return 1; }")


class TestSemaRejects:
    def test_undeclared_identifier(self):
        with pytest.raises(CompileError, match="undeclared"):
            check("int f() { return x; }")

    def test_redefinition(self):
        with pytest.raises(CompileError, match="redefinition"):
            check("int f() { int x; int x; return 0; }")

    def test_shadowing_in_inner_scope_allowed(self):
        check("int f() { int x = 1; { int x = 2; } return x; }")

    def test_pointer_int_assignment(self):
        with pytest.raises(CompileError, match="incompatible"):
            check("int f(int* p) { int x; x = p; return x; }")

    def test_pointer_depth_mismatch(self):
        with pytest.raises(CompileError, match="incompatible"):
            check("int f(int** p) { int* q; q = p; return 0; }")

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError, match="dereference"):
            check("int f(int x) { return *x; }")

    def test_break_outside_loop(self):
        with pytest.raises(CompileError, match="break"):
            check("int f() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(CompileError, match="continue"):
            check("int f() { continue; return 0; }")

    def test_wrong_arg_count(self):
        with pytest.raises(CompileError, match="argument"):
            check("int g(int a) { return a; } int f() { return g(1, 2); }")

    def test_void_return_with_value(self):
        with pytest.raises(CompileError, match="void function"):
            check("void f() { return 1; }")

    def test_missing_return_value(self):
        with pytest.raises(CompileError, match="must return"):
            check("int f() { return; }")

    def test_assign_to_rvalue(self):
        with pytest.raises(CompileError, match="not assignable"):
            check("int f(int a) { (a + 1) = 2; return a; }")

    def test_call_undefined(self):
        with pytest.raises(CompileError, match="undefined function"):
            check("int f() { return nope(); }")

    def test_mul_on_pointer(self):
        with pytest.raises(CompileError, match="not valid on pointers"):
            check("int f(int* p) { return p * 2; }")

    def test_add_two_pointers(self):
        with pytest.raises(CompileError, match="add two pointers"):
            check("int* f(int* p, int* q) { return p + q; }")


class TestLowering:
    def test_loop_becomes_phi(self):
        module = compile_source(
            "int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }"
        )
        func = module.functions["f"]
        phis = [i for i in func.instructions() if isinstance(i, Phi)]
        assert len(phis) == 2  # i and s

    def test_short_circuit_does_not_evaluate_rhs(self):
        # g() would trap the output channel; && must skip it when lhs is 0.
        module = compile_source(
            """
            int g() { __out(99); return 1; }
            int f(int a) { return a && g(); }
            """
        )
        func = module.functions["f"]
        # The call must be under a conditional branch, not straight-line.
        entry_calls = [
            i for i in func.entry.instructions if isinstance(i, Call)
        ]
        assert entry_calls == []

    def test_output_builtin(self):
        module = compile_source("int main() { __out(7); return 0; }")
        outs = [
            i
            for i in module.functions["main"].instructions()
            if isinstance(i, Output)
        ]
        assert len(outs) == 1

    def test_global_scalar_becomes_size_1(self):
        module = compile_source("int g = 5; int main() { return g; }")
        assert module.globals["g"].size_words == 1
        assert module.globals["g"].initializer == [5]

    def test_missing_return_defaults_to_zero(self):
        module = compile_source("int f() { }")
        from repro.ir.instructions import Ret
        from repro.ir.values import ConstantInt

        rets = [i for i in module.functions["f"].instructions() if isinstance(i, Ret)]
        assert len(rets) == 1
        assert isinstance(rets[0].value, ConstantInt)

    def test_dead_code_after_return_removed(self):
        module = compile_source("int f() { return 1; __out(5); }")
        outs = [
            i for i in module.functions["f"].instructions() if isinstance(i, Output)
        ]
        assert outs == []

    def test_pointer_difference_scales(self, small_build):
        from repro.core.api import run_functional

        module_src = """
        int a[10];
        int main() {
            int* p = &a[7];
            int* q = &a[2];
            __out(p - q);
            return 0;
        }
        """
        from repro.core.api import build

        result = build(module_src)
        assert run_functional(result.riscv).output == [5]
