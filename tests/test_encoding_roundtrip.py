"""Property test: every valid instruction survives encode/decode unchanged.

Randomizes over all formats via hypothesis, including the boundary cases the
verifier's STR009 check relies on: distance 0 (the zero register), the
maximal distance 1023, and immediates at both signed ends of each field.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.straight.isa import MAX_DISTANCE, OPCODES, SInstr  # noqa: E402
from repro.straight.encoding import decode, encode  # noqa: E402

#: Signed immediate ranges per format (ST's R2 imm5 is word-scaled).
_IMM_RANGES = {
    "R2": (-16, 15),
    "R1I": (-(1 << 14), (1 << 14) - 1),
    "I25": (-(1 << 24), (1 << 24) - 1),
    "I20": (0, (1 << 20) - 1),
}

distances = st.one_of(
    st.sampled_from([0, 1, 2, MAX_DISTANCE - 1, MAX_DISTANCE]),
    st.integers(min_value=0, max_value=MAX_DISTANCE),
)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(sorted(OPCODES.values(), key=lambda s: s.code)))
    srcs = tuple(draw(distances) for _ in range(spec.num_srcs))
    imm = None
    if spec.has_imm:
        low, high = _IMM_RANGES[spec.fmt]
        imm = draw(
            st.one_of(
                st.sampled_from([low, -1 if low < 0 else 0, 0, 1, high]),
                st.integers(min_value=low, max_value=high),
            )
        )
    return SInstr(spec.mnemonic, srcs, imm)


@settings(max_examples=300, deadline=None)
@given(instructions())
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.mnemonic == instr.mnemonic
    assert back.srcs == instr.srcs
    assert (back.imm or 0) == (instr.imm or 0)


@settings(max_examples=200, deadline=None)
@given(instructions(), instructions())
def test_distinct_instructions_encode_distinctly(first, second):
    key = (first.mnemonic, first.srcs, first.imm or 0)
    other = (second.mnemonic, second.srcs, second.imm or 0)
    if key != other:
        assert encode(first) != encode(second)


def test_boundary_distances_explicitly():
    for dist in (0, 1, MAX_DISTANCE):
        instr = SInstr("RMOV", (dist,))
        assert decode(encode(instr)).srcs == (dist,)
    two = SInstr("ADD", (MAX_DISTANCE, 0))
    assert decode(encode(two)).srcs == (MAX_DISTANCE, 0)


def test_immediate_bounds_reject_overflow():
    from repro.common.errors import AsmError

    with pytest.raises(AsmError):
        encode(SInstr("ADDI", (1,), imm=1 << 14))
    with pytest.raises(AsmError):
        encode(SInstr("LUI", (), imm=1 << 20))
    with pytest.raises(AsmError):
        encode(SInstr("ST", (1, 2), imm=16))
