"""Property test: every valid instruction survives encode/decode unchanged.

Randomizes over all formats via hypothesis, including the boundary cases the
verifier's STR009 check relies on: distance 0 (the zero register), the
maximal distance 1023, and immediates at both signed ends of each field.

The second half parametrizes over the ISA registry: a generic instruction
strategy for every GPR-model ISA (driven purely off its descriptor's opcode
table), and a compiled-program round-trip that re-encodes every registered
ISA's linked SMALL_PROGRAM text word for word.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro import isa as isa_registry  # noqa: E402
from repro.straight.isa import MAX_DISTANCE, OPCODES, SInstr  # noqa: E402
from repro.straight.encoding import decode, encode  # noqa: E402

#: Signed immediate ranges per format (ST's R2 imm5 is word-scaled).
_IMM_RANGES = {
    "R2": (-16, 15),
    "R1I": (-(1 << 14), (1 << 14) - 1),
    "I25": (-(1 << 24), (1 << 24) - 1),
    "I20": (0, (1 << 20) - 1),
}

distances = st.one_of(
    st.sampled_from([0, 1, 2, MAX_DISTANCE - 1, MAX_DISTANCE]),
    st.integers(min_value=0, max_value=MAX_DISTANCE),
)


@st.composite
def instructions(draw):
    spec = draw(st.sampled_from(sorted(OPCODES.values(), key=lambda s: s.code)))
    srcs = tuple(draw(distances) for _ in range(spec.num_srcs))
    imm = None
    if spec.has_imm:
        low, high = _IMM_RANGES[spec.fmt]
        imm = draw(
            st.one_of(
                st.sampled_from([low, -1 if low < 0 else 0, 0, 1, high]),
                st.integers(min_value=low, max_value=high),
            )
        )
    return SInstr(spec.mnemonic, srcs, imm)


@settings(max_examples=300, deadline=None)
@given(instructions())
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    back = decode(word)
    assert back.mnemonic == instr.mnemonic
    assert back.srcs == instr.srcs
    assert (back.imm or 0) == (instr.imm or 0)


@settings(max_examples=200, deadline=None)
@given(instructions(), instructions())
def test_distinct_instructions_encode_distinctly(first, second):
    key = (first.mnemonic, first.srcs, first.imm or 0)
    other = (second.mnemonic, second.srcs, second.imm or 0)
    if key != other:
        assert encode(first) != encode(second)


def test_boundary_distances_explicitly():
    for dist in (0, 1, MAX_DISTANCE):
        instr = SInstr("RMOV", (dist,))
        assert decode(encode(instr)).srcs == (dist,)
    two = SInstr("ADD", (MAX_DISTANCE, 0))
    assert decode(encode(two)).srcs == (MAX_DISTANCE, 0)


def test_immediate_bounds_reject_overflow():
    from repro.common.errors import AsmError

    with pytest.raises(AsmError):
        encode(SInstr("ADDI", (1,), imm=1 << 14))
    with pytest.raises(AsmError):
        encode(SInstr("LUI", (), imm=1 << 20))
    with pytest.raises(AsmError):
        encode(SInstr("ST", (1, 2), imm=16))


# ------------------------------------------------- registry-parametrized


#: Signed/even-ness constraints per RV32IM-family format (shifts special).
_GPR_IMM_RANGES = {
    "I": (-(1 << 11), (1 << 11) - 1, 1),
    "S": (-(1 << 11), (1 << 11) - 1, 1),
    "B": (-(1 << 12), (1 << 12) - 2, 2),
    "U": (0, (1 << 20) - 1, 1),
    "J": (-(1 << 20), (1 << 20) - 2, 2),
}

_SHIFTS = ("SLLI", "SRLI", "SRAI")


def _gpr_isas():
    return [
        name
        for name in isa_registry.names()
        if isa_registry.get(name).register_model == "gpr"
    ]


def _instr_class(descriptor):
    """The ISA's instruction class, recovered from decoding a NOP word."""
    return type(descriptor.decode(0x0000_0013))  # ADDI x0, x0, 0


@st.composite
def gpr_instructions(draw, descriptor):
    """Any valid instruction of a GPR-model ISA, from its opcode table."""
    instr_cls = _instr_class(descriptor)
    spec = draw(
        st.sampled_from(sorted(descriptor.opcodes.values(),
                               key=lambda s: s.mnemonic))
    )
    regs = st.integers(min_value=0, max_value=31)
    fmt = spec.fmt
    kwargs = {}
    if fmt in ("R", "I", "U", "J"):
        kwargs["rd"] = draw(regs)
    if fmt in ("R", "I", "S", "B"):
        kwargs["rs1"] = draw(regs)
    if fmt in ("R", "S", "B"):
        kwargs["rs2"] = draw(regs)
    if spec.mnemonic in _SHIFTS:
        kwargs["imm"] = draw(st.integers(min_value=0, max_value=31))
    elif fmt in _GPR_IMM_RANGES:
        low, high, step = _GPR_IMM_RANGES[fmt]
        kwargs["imm"] = draw(
            st.one_of(
                st.sampled_from([low, 0, high]),
                st.integers(min_value=low // step, max_value=high // step).map(
                    lambda units: units * step
                ),
            )
        )
    return instr_cls(spec.mnemonic, **kwargs)


@pytest.mark.parametrize("isa_name", _gpr_isas())
@settings(max_examples=200, deadline=None)
@given(data=st.data())
def test_gpr_encode_decode_roundtrip(isa_name, data):
    descriptor = isa_registry.get(isa_name)
    instr = data.draw(gpr_instructions(descriptor))
    word = descriptor.encode(instr)
    assert 0 <= word < (1 << 32)
    back = descriptor.decode(word)
    assert back.mnemonic == instr.mnemonic
    for field in ("rd", "rs1", "rs2"):
        if getattr(instr, field) is not None:
            assert getattr(back, field) == getattr(instr, field)
    if instr.spec.fmt != "SYS" and instr.imm is not None:
        assert back.imm == instr.imm


@pytest.mark.parametrize("isa_name", isa_registry.names())
def test_linked_program_reencodes_identically(isa_name):
    """Every registered ISA's compiled text survives encode∘decode∘encode."""
    from repro.frontend import compile_source
    from tests.conftest import SMALL_PROGRAM

    descriptor = isa_registry.get(isa_name)
    compilation = descriptor.compile_module(
        compile_source(SMALL_PROGRAM), max_distance=1023
    )
    program = compilation.link()
    assert len(program.instrs) > 0
    for instr in program.instrs:
        word = descriptor.encode(instr)
        assert descriptor.encode(descriptor.decode(word)) == word
