"""Tests for the trace-level ILP analyzer."""

from repro.common.trace import TraceEntry
from repro.uarch.ilp import dataflow_limit, window_limited_ipc
from repro.core.api import build, run_functional


def _alu(seq, srcs=(), dest=None):
    return TraceEntry(
        pc=0x1000 + 4 * seq,
        op_class="alu",
        mnemonic="ADD",
        dest=dest if dest is not None else seq,
        srcs=srcs,
    )


class TestDataflowLimit:
    def test_independent_ops_have_high_ipc(self):
        trace = [_alu(i) for i in range(100)]
        report = dataflow_limit(trace)
        assert report.critical_path == 1
        assert report.dataflow_ipc == 100.0

    def test_serial_chain_has_ipc_one(self):
        trace = [_alu(0)]
        for i in range(1, 50):
            trace.append(_alu(i, srcs=(i - 1,)))
        report = dataflow_limit(trace)
        assert report.critical_path == 50
        assert report.dataflow_ipc == 1.0

    def test_latency_weighting(self):
        mul = TraceEntry(pc=0, op_class="mul", mnemonic="MUL", dest=0)
        dependent = _alu(1, srcs=(0,))
        report = dataflow_limit([mul, dependent])
        assert report.critical_path == 4  # 3 (mul) + 1 (alu)

    def test_memory_dependence_honored(self):
        store = TraceEntry(
            pc=0, op_class="store", mnemonic="ST", dest=0, mem_addr=0x100
        )
        load = TraceEntry(
            pc=4, op_class="load", mnemonic="LD", dest=1, mem_addr=0x100
        )
        with_mem = dataflow_limit([store, load], track_memory=True)
        without = dataflow_limit([store, load], track_memory=False)
        assert with_mem.critical_path > without.critical_path

    def test_real_trace_ceiling_above_achieved_ipc(self, small_build):
        from repro.core import simulate, straight_4way

        result = simulate(small_build.straight_re, straight_4way())
        report = dataflow_limit(result.interpreter.trace)
        assert report.dataflow_ipc >= result.stats.ipc

    def test_distance_histogram_collected(self, small_build):
        result = run_functional(small_build.straight_re, collect_trace=True)
        report = dataflow_limit(result.interpreter.trace)
        assert report.dependence_distance_histogram
        assert min(report.dependence_distance_histogram) >= 1


class TestWindowLimit:
    def test_window_monotonicity(self):
        # Parallel work interleaved with chains: bigger window, more ILP.
        trace = []
        for i in range(0, 300, 3):
            trace.append(_alu(i))
            trace.append(_alu(i + 1, srcs=(i,)))
            trace.append(_alu(i + 2, srcs=(i + 1,)))
        small = window_limited_ipc(trace, window=4)
        large = window_limited_ipc(trace, window=64)
        assert large >= small

    def test_window_one_serializes(self):
        trace = [_alu(i) for i in range(20)]
        assert window_limited_ipc(trace, window=1) == 1.0

    def test_real_trace_window_scaling(self, small_build):
        result = run_functional(small_build.straight_re, collect_trace=True)
        trace = result.interpreter.trace
        ipc_small = window_limited_ipc(trace, window=8)
        ipc_large = window_limited_ipc(trace, window=224)
        assert ipc_large >= ipc_small
