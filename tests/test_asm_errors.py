"""Assembler error paths: malformed input raises structured AsmError.

Every parse failure must carry the 1-based source line (``.line``) and a
message naming the offending token — not a bare traceback from deep inside
instruction construction.
"""

import pytest

from repro.common.errors import AsmError
from repro.straight import parse_assembly
from repro.straight.isa import SInstr


def parse_error(text):
    with pytest.raises(AsmError) as excinfo:
        parse_assembly(text)
    return excinfo.value


class TestInstructionLineErrors:
    def test_unknown_mnemonic(self):
        err = parse_error("main:\n    FROB [1]")
        assert "unknown mnemonic" in str(err)
        assert err.line == 2

    def test_malformed_distance_operand(self):
        err = parse_error("main:\n    ADD [x] [2]")
        assert "bad distance" in str(err)
        assert err.line == 2

    def test_bad_operand_token(self):
        err = parse_error("main:\n    ADDI [0] 1\n    J !!!")
        assert "bad operand" in str(err)
        assert err.line == 3

    def test_duplicate_immediate(self):
        err = parse_error("main:\n    ADDI [1] 2 3")
        assert "duplicate immediate" in str(err)
        assert err.line == 2

    def test_duplicate_label_operand(self):
        err = parse_error("main:\n    J here there")
        assert "duplicate label" in str(err)
        assert err.line == 2

    def test_wrong_source_count(self):
        err = parse_error("main:\n    NOP\n    ADD [1]")
        assert "2 source(s)" in str(err)
        assert err.line == 3

    def test_out_of_range_distance(self):
        err = parse_error("main:\n    RMOV [1024]")
        assert "out of range" in str(err)
        assert err.line == 2

    def test_missing_immediate(self):
        err = parse_error("main:\n    ADDI [1]")
        assert "immediate" in str(err)
        assert err.line == 2

    def test_unexpected_immediate(self):
        err = parse_error("main:\n    RMOV [1] 5")
        assert "does not take an immediate" in str(err)
        assert err.line == 2


class TestLabelErrors:
    def test_bad_label_character(self):
        err = parse_error("9lives:\n    NOP")
        assert "bad label" in str(err)
        assert err.line == 1

    def test_empty_label(self):
        err = parse_error("   :\n    NOP")
        assert "bad label" in str(err)
        assert err.line == 1

    def test_duplicate_label_reports_second_site(self):
        err = parse_error("main:\n    NOP\nmain:\n    NOP")
        assert "duplicate label 'main'" in str(err)
        assert err.line == 3


class TestStructuredErrors:
    def test_line_is_in_message_and_attribute(self):
        err = parse_error("main:\n    FROB")
        assert err.line == 2
        assert str(err).startswith("line 2:")

    def test_direct_sinstr_errors_have_no_line(self):
        with pytest.raises(AsmError) as excinfo:
            SInstr("ADD", srcs=(1,))
        assert excinfo.value.line is None

    def test_origins_track_instruction_lines(self):
        unit = parse_assembly(
            "\nmain:\n    ADDI [0] 1\n\n    # comment\n    JR [2]\n"
        )
        assert unit.instruction_origins() == [3, 6]
