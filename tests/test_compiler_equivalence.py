"""Cross-ISA differential tests: every program must produce identical output
on the RV32IM and STRAIGHT (RAW and RE+) binaries.

The STRAIGHT functional simulator additionally *proves* every operand's
distance is dynamically exact (write-once discipline), so a passing run here
certifies the distance fixing/bounding algorithms, not just the data values.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.bitops import to_signed, wrap32
from tests.conftest import compile_and_run_both

CORPUS = {
    "arith_mix": (
        """
        int main() {
            int a = 12345; uint b = 0xDEADBEEF;
            __out(a * 7 - a / 3 + a % 11);
            __out(b >> 5); __out(b / 3); __out(b % 1000);
            __out(a << 4); __out(-a >> 2); __out(~a); __out(!a);
            __out(a & 0xF0F0); __out(a | 3); __out(a ^ 0x5555);
            return 0;
        }
        """,
        None,
    ),
    "division_edges": (
        """
        int main() {
            int min_int = 0x80000000;
            int zero = 0;
            __out(min_int / -1);    // overflow -> INT_MIN (RV32IM rule)
            __out(min_int % -1);    // -> 0
            __out(5 / zero);        // -> all ones
            __out(5 % zero);        // -> dividend
            uint u = 7;
            __out(u / zero);
            return 0;
        }
        """,
        None,
    ),
    "nested_loops": (
        """
        int main() {
            int total = 0;
            for (int i = 0; i < 12; i++) {
                for (int j = i; j < 12; j++) {
                    if ((i * j) % 3 == 0) total += i * 16 + j;
                    else if ((i + j) % 5 == 0) total -= j;
                    else continue;
                    total ^= i;
                }
            }
            __out(total);
            return 0;
        }
        """,
        None,
    ),
    "while_break_continue": (
        """
        int main() {
            int i = 0; int acc = 0;
            while (1) {
                i++;
                if (i > 40) break;
                if (i % 3 == 0) continue;
                acc += i;
            }
            do { acc -= 2; i--; } while (i > 30);
            __out(acc); __out(i);
            return 0;
        }
        """,
        None,
    ),
    "pointers_and_arrays": (
        """
        int grid[24];
        int main() {
            int* p = grid;
            for (int i = 0; i < 24; i++) *(p + i) = i * i;
            int* q = &grid[23];
            int total = 0;
            while (q >= p) { total += *q; q = q - 1; }
            __out(total);
            int local[6];
            for (int i = 0; i < 6; i++) local[i] = grid[i * 4];
            __out(local[0] + local[5] * 2);
            return 0;
        }
        """,
        None,
    ),
    "call_web": (
        """
        int add3(int a, int b, int c) { return a + b + c; }
        int twice(int x) { return add3(x, x, 0); }
        int compose(int x) { return twice(add3(x, 1, 2)) - twice(x); }
        int main() {
            int acc = 0;
            for (int i = 0; i < 8; i++) acc += compose(i + acc % 7);
            __out(acc);
            return 0;
        }
        """,
        None,
    ),
    "deep_recursion": (
        """
        int ack_lite(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack_lite(m - 1, 1);
            return ack_lite(m - 1, ack_lite(m, n - 1));
        }
        int main() { __out(ack_lite(2, 3)); return 0; }
        """,
        [9],
    ),
    "mutual_recursion": (
        """
        int is_odd(int n);
        int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
        int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
        int main() { __out(is_even(10)); __out(is_odd(7)); return 0; }
        """,
        None,
    ),
    "many_live_values": (
        """
        int main() {
            int a = 1; int b = 2; int c = 3; int d = 4; int e = 5;
            int f = 6; int g = 7; int h = 8; int i = 9; int j = 10;
            for (int k = 0; k < 12; k++) {
                a += b; b += c; c += d; d += e; e += f;
                f += g; g += h; h += i; i += j; j += a;
                if (k % 2 == 0) { a ^= j; } else { j ^= a; }
            }
            __out(a + b + c + d + e + f + g + h + i + j);
            return 0;
        }
        """,
        None,
    ),
    "swap_cycle_phis": (
        """
        int main() {
            int a = 3; int b = 1000;
            for (int i = 0; i < 9; i++) {
                int t = a; a = b; b = t;   // phi swap problem
            }
            __out(a); __out(b);
            return 0;
        }
        """,
        [1000, 3],
    ),
    "ternary_and_shortcircuit": (
        """
        int side_effects;
        int bump(int v) { side_effects += 1; return v; }
        int main() {
            side_effects = 0;
            int x = 0;
            x = (1 && bump(0)) || bump(1);
            x += bump(2) && 0 && bump(3);
            __out(x);
            __out(side_effects);   // bump(3) must never run
            __out(x > 0 ? bump(10) : bump(20));
            return 0;
        }
        """,
        None,
    ),
    "unsigned_compares": (
        """
        int main() {
            uint big = 0xFFFFFFF0;
            int negative = -16;
            __out(big > 10);          // unsigned: true
            __out(negative > 10);     // signed: false
            __out(big == 0xFFFFFFF0);
            uint a = 3; uint b = 5;
            __out(a - b);             // wraps
            __out((a - b) < 100);     // unsigned compare of wrap
            return 0;
        }
        """,
        [1, 0, 1, 4294967294, 0],
    ),
    "global_state_machine": (
        """
        int state; int counts[4];
        void step(int input) {
            if (state == 0) { state = input % 2 == 0 ? 1 : 2; }
            else if (state == 1) { state = input > 5 ? 3 : 0; }
            else if (state == 2) { state = 0; }
            else { state = input % 3; }
            counts[state] += 1;
        }
        int main() {
            for (int i = 0; i < 50; i++) step(i * 7 % 11);
            __out(counts[0]); __out(counts[1]);
            __out(counts[2]); __out(counts[3]);
            __out(state);
            return 0;
        }
        """,
        None,
    ),
}

# Forward declarations are not in the language; rewrite mutual recursion.
CORPUS["mutual_recursion"] = (
    """
    int is_even(int n);
    """.replace("int is_even(int n);", "")
    + """
    int helper(int n, int parity) {
        if (n == 0) return parity;
        return helper(n - 1, 1 - parity);
    }
    int main() { __out(helper(10, 1)); __out(helper(7, 0)); return 0; }
    """,
    None,
)


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program(name):
    source, expected = CORPUS[name]
    output = compile_and_run_both(source)
    if expected is not None:
        assert output == expected, f"{name}: {output}"


@pytest.mark.parametrize("max_distance", [31, 63])
def test_corpus_with_tight_distance_limits(max_distance):
    """Distance bounding must keep programs correct at small limits."""
    source, expected = CORPUS["many_live_values"]
    output = compile_and_run_both(source, max_distance=max_distance)
    reference = compile_and_run_both(source)
    assert output == reference


def test_moderate_program_at_very_tight_limit():
    """A program with few live values still compiles at max distance 15."""
    source, _ = CORPUS["swap_cycle_phis"]
    output = compile_and_run_both(source, max_distance=15)
    assert output == [1000, 3]


def test_infeasible_live_set_raises_cleanly():
    """Too many live values for the distance budget is a clean CompileError,
    never silent miscompilation."""
    from repro.common.errors import CompileError
    from repro.core.api import build

    source, _ = CORPUS["many_live_values"]
    with pytest.raises(CompileError, match="cannot fit"):
        build(source, max_distance=15)


# ---------------------------------------------------------------------------
# Property-based compiler fuzzing: random expression programs
# ---------------------------------------------------------------------------

_LEAVES = ["a", "b", "c", "7", "0", "123456", "0x7fffffff"]
_BINOPS = ["+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"]
_CMPOPS = ["<", ">", "<=", ">=", "==", "!="]


@st.composite
def expression(draw, depth=0):
    if depth >= 4 or draw(st.booleans()):
        return draw(st.sampled_from(_LEAVES))
    kind = draw(st.sampled_from(["bin", "cmp", "neg", "not"]))
    left = draw(expression(depth=depth + 1))
    if kind == "bin":
        op = draw(st.sampled_from(_BINOPS))
        right = draw(expression(depth=depth + 1))
        if op in ("<<", ">>"):
            right = f"({right} & 15)"
        return f"({left} {op} {right})"
    if kind == "cmp":
        op = draw(st.sampled_from(_CMPOPS))
        right = draw(expression(depth=depth + 1))
        return f"({left} {op} {right})"
    if kind == "neg":
        return f"(-{left})"
    return f"(~{left})"


@settings(max_examples=30, deadline=None)
@given(expression(), st.integers(-100, 100), st.integers(-100, 100),
       st.integers(0, 2**31 - 1))
def test_random_expressions_agree_across_isas(expr, a, b, c):
    source = f"""
    int main() {{
        int a = {a}; int b = {b}; uint c = {c};
        __out({expr});
        return 0;
    }}
    """
    compile_and_run_both(source)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=12),
    st.integers(1, 6),
)
def test_random_loop_programs_agree(values, stride):
    body = "\n".join(
        f"acc = acc * 3 + data[{i % len(values)}];" for i in range(len(values))
    )
    array_init = "\n".join(
        f"data[{i}] = {v};" for i, v in enumerate(values)
    )
    source = f"""
    int data[{len(values)}];
    int main() {{
        {array_init}
        int acc = 0;
        for (int i = 0; i < {len(values)}; i += {stride}) {{
            {body}
            acc ^= i;
        }}
        __out(acc);
        return 0;
    }}
    """
    compile_and_run_both(source)
