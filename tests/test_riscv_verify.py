"""The RV32IM static verifier: def-before-use, call clobbers, SP balance."""

import copy
import json

from repro.frontend import compile_source
from repro.compiler import compile_to_riscv
from repro.riscv import link_program, parse_assembly, startup_stub
from repro.riscv.verify import undef_map, verify_program

SOURCE = """
int helper(int x) { return x * 2 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += helper(i);
    __out(acc);
    return 0;
}
"""


def compiled_program(source=SOURCE):
    return compile_to_riscv(compile_source(source)).link()


def asm_program(body):
    return link_program([startup_stub(), parse_assembly(body)])


def codes(report):
    return {d.code for d in report.diagnostics}


class TestCleanPrograms:
    def test_compiled_program_verifies_clean(self):
        report = verify_program(compiled_program())
        assert not report.has_errors(), report.text()

    def test_backend_manifest_is_consumed(self):
        program = compiled_program()
        report = verify_program(program)
        assert program.manifest is not None
        assert report.stats["annotated_functions"] >= 2

    def test_clean_without_manifest(self):
        program = compiled_program()
        program.manifest = None
        assert not verify_program(program).has_errors()

    def test_report_is_deterministic(self):
        program = compiled_program()
        first = verify_program(program, lint=True)
        second = verify_program(program, lint=True)
        assert first.text() == second.text()
        assert json.dumps(first.as_dict()) == json.dumps(second.as_dict())


class TestRvgCodes:
    def test_rvg001_read_before_write(self):
        report = verify_program(asm_program("""
main:
    add a0, t0, zero
    jalr zero, ra, 0
"""))
        assert "RVG001" in codes(report)

    def test_rvg002_call_clobbered_read(self):
        report = verify_program(asm_program("""
main:
    addi t0, zero, 5
    jal ra, helper
    add a0, t0, zero
    jalr zero, ra, 0
helper:
    jalr zero, ra, 0
"""))
        assert "RVG002" in codes(report)

    def test_callee_saved_survives_call(self):
        report = verify_program(asm_program("""
main:
    addi s2, zero, 5
    jal ra, helper
    add a0, s2, zero
    jalr zero, ra, 0
helper:
    jalr zero, ra, 0
"""))
        assert not report.has_errors(), report.text()

    def test_rvg003_sp_merge_conflict(self):
        report = verify_program(asm_program("""
main:
    beq a0, zero, skip
    addi sp, sp, -8
skip:
    addi sp, sp, 0
    jalr zero, ra, 0
"""))
        assert "RVG003" in codes(report)

    def test_rvg004_unbalanced_return(self):
        report = verify_program(asm_program("""
main:
    addi sp, sp, -16
    jalr zero, ra, 0
"""))
        assert "RVG004" in codes(report)

    def test_balanced_frame_is_clean(self):
        report = verify_program(asm_program("""
main:
    addi sp, sp, -16
    sw ra, 0(sp)
    lw ra, 0(sp)
    addi sp, sp, 16
    jalr zero, ra, 0
"""))
        assert not report.has_errors(), report.text()

    def test_rvg005_non_addi_sp_write(self):
        report = verify_program(asm_program("""
main:
    add sp, sp, a0
    jalr zero, ra, 0
"""))
        assert "RVG005" in codes(report)

    def test_rvg006_jump_leaves_text(self):
        program = compiled_program()
        mutant = copy.deepcopy(program)
        victim = next(
            i for i, instr in enumerate(mutant.instrs)
            if instr.mnemonic == "JAL" and instr.rd == 0
        )
        mutant.instrs[victim].imm = 4 * 100_000
        assert "RVG006" in codes(verify_program(mutant))

    def test_rvg007_missing_return_value(self):
        program = asm_program("""
main:
    jalr zero, ra, 0
""")
        program.manifest = {
            "functions": {"main": {"num_args": 0, "returns_value": True}}
        }
        assert "RVG007" in codes(verify_program(program))

    def test_call_site_argument_check(self):
        program = asm_program("""
main:
    jal ra, callee
    jalr zero, ra, 0
callee:
    jalr zero, ra, 0
""")
        program.manifest = {
            "functions": {
                "main": {"num_args": 0, "returns_value": False},
                "callee": {"num_args": 1, "returns_value": False},
            }
        }
        report = verify_program(program)
        assert any(
            d.code == "RVG001" and "argument" in d.message
            for d in report.diagnostics
        )


class TestUndefMap:
    def test_states_follow_writes_and_calls(self):
        program = asm_program("""
main:
    addi t0, zero, 5
    jal ra, helper
    add a0, s2, zero
    jalr zero, ra, 0
helper:
    jalr zero, ra, 0
""")
        table = undef_map(program)
        by_mnemonic = {}
        for index, instr in enumerate(program.instrs):
            by_mnemonic.setdefault(instr.mnemonic, []).append(index)
        addi_main = by_mnemonic["ADDI"][-1]  # main's addi (stub has one too)
        t0 = 5
        undef, clob = table[addi_main]
        assert t0 in undef  # not yet written
        t1 = 6
        assert t1 in undef  # never written at all
        add_index = by_mnemonic["ADD"][0]
        undef, clob = table[add_index]
        assert t0 in clob  # the call clobbered it
        assert t1 in clob  # unwritten values also become clobber-tainted
