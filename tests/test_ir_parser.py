"""Textual IR parser tests: golden inputs, round-trips, error paths."""

import pytest

from repro.common.errors import IRError
from repro.frontend import compile_source
from repro.ir.parser import parse_module
from repro.ir.verifier import verify_module

GOLDEN = """
; module demo
@table: [4 x i32] = [10, 20, 30, 40]

def @sum(%arr, %n) -> i32 {
entry:
  br %loop
loop:
  %i = phi [0, %entry], [%i.next, %body]
  %acc = phi [0, %entry], [%acc.next, %body]
  %cmp = icmp.slt %i, %n
  condbr %cmp, %body, %done
body:
  %addr = gep %arr, %i
  %v = load %addr
  %acc.next = add %acc, %v
  %i.next = add %i, 1
  br %loop
done:
  ret %acc
}

def @main() -> i32 {
entry:
  %total = call @sum(@table, 4)
  output %total
  ret 0
}
"""


class TestParsing:
    def test_golden_module_parses_and_verifies(self):
        module = parse_module(GOLDEN)
        verify_module(module)
        assert set(module.functions) == {"sum", "main"}
        assert module.globals["table"].init_words() == [10, 20, 30, 40]

    def test_parsed_module_executes(self):
        from repro.compiler import compile_to_riscv
        from repro.riscv import RiscvInterpreter

        module = parse_module(GOLDEN)
        program = compile_to_riscv(module).link()
        interp = RiscvInterpreter(program)
        interp.run(10_000)
        assert interp.output == [100]

    def test_forward_phi_reference(self):
        # %x.next is referenced by the phi before it is defined.
        module = parse_module(GOLDEN)
        loop = [b for b in module.functions["sum"].blocks if b.name == "loop"][0]
        phi = loop.phis()[0]
        assert phi.incomings()[1][0].name == "i.next"

    def test_void_function_and_void_call(self):
        text = """
def @emit(%v) -> void {
entry:
  output %v
  ret
}

def @main() -> i32 {
entry:
  call @emit(42)
  ret 0
}
"""
        module = parse_module(text)
        call = module.functions["main"].entry.instructions[0]
        assert call.type.is_void()

    def test_hex_and_negative_constants(self):
        text = """
def @f() -> i32 {
entry:
  %a = add 0x10, -3
  ret %a
}
"""
        module = parse_module(text)
        instr = module.functions["f"].entry.instructions[0]
        assert instr.lhs.value == 16
        # -3 wraps to unsigned form
        assert instr.rhs.value == 0xFFFFFFFD

    def test_undef_operand(self):
        text = """
def @f() -> i32 {
entry:
  %a = add undef, 1
  ret %a
}
"""
        module = parse_module(text)
        from repro.ir.values import UndefValue

        instr = module.functions["f"].entry.instructions[0]
        assert isinstance(instr.lhs, UndefValue)


class TestRoundTrip:
    SOURCES = {
        "loops": """
            int f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; return s; }
            int main() { __out(f(9)); return 0; }
        """,
        "calls_and_arrays": """
            int g[4] = {1, 2, 3, 4};
            int pick(int* p, int i) { return p[i]; }
            int main() { __out(pick(g, 2)); return 0; }
        """,
        "branches": """
            int main() {
                int x = 5;
                if (x > 3) { __out(1); } else { __out(0); }
                return x > 4 ? 2 : 3;
            }
        """,
    }

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_print_parse_print_fixed_point(self, name):
        module = compile_source(self.SOURCES[name])
        text = repr(module)
        reparsed = parse_module(text, name=module.name)
        assert repr(reparsed) == text


class TestErrors:
    def test_undefined_value(self):
        with pytest.raises(IRError, match="undefined value"):
            parse_module("def @f() -> i32 {\nentry:\n  ret %nope\n}")

    def test_unknown_opcode(self):
        with pytest.raises(IRError, match="unknown opcode"):
            parse_module("def @f() -> i32 {\nentry:\n  %a = frobnicate 1, 2\n  ret %a\n}")

    def test_branch_to_unknown_block(self):
        with pytest.raises(IRError, match="unknown block"):
            parse_module("def @f() -> i32 {\nentry:\n  br %nowhere\n}")

    def test_unterminated_function(self):
        with pytest.raises(IRError, match="unterminated"):
            parse_module("def @f() -> i32 {\nentry:\n  ret 0")

    def test_redefinition(self):
        with pytest.raises(IRError, match="redefinition"):
            parse_module(
                "def @f() -> i32 {\nentry:\n  %a = add 1, 2\n  %a = add 3, 4\n  ret %a\n}"
            )

    def test_instruction_before_label(self):
        with pytest.raises(IRError, match="before any block"):
            parse_module("def @f() -> i32 {\n  ret 0\n}")

    def test_verifier_runs_on_parse(self):
        # Structurally parseable but SSA-invalid (use not dominated).
        text = """
def @f(%c) -> i32 {
entry:
  condbr %c, %a, %b
a:
  %x = add 1, 2
  ret %x
b:
  ret %x
}
"""
        with pytest.raises(IRError, match="not dominated"):
            parse_module(text)
