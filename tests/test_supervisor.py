"""Supervised sweep layer tests (ISSUE 6).

Covers: failure classification, retry/backoff with a per-sweep budget,
deterministic-failure quarantine with crash dumps, the append-only fsync'd
checkpoint journal (torn-tail salvage), and the resume guarantee — an
interrupted-then-resumed sweep produces a canonical manifest byte-identical
to an uninterrupted run, pinned by a golden fixture.
"""

import os

import pytest

from repro.common.errors import SimulationError
from repro.harness import cache as cache_mod
from repro.harness.chaos import _grid
from repro.harness.supervisor import (
    DETERMINISTIC,
    TRANSIENT,
    CheckpointJournal,
    RetryPolicy,
    SweepInterrupted,
    classify_failure,
    supervised_sweep,
)
from repro.harness.sweep import clear_memo

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


@pytest.fixture
def disk_cache(tmp_path):
    """A fresh persistent cache rooted in tmp_path, restored afterwards."""
    previous = cache_mod.swap_state()
    cache_mod.configure(str(tmp_path / "cache"), enabled=True)
    clear_memo()
    yield cache_mod._state
    clear_memo()
    cache_mod.swap_state(previous)


def no_sleep(**kwargs):
    kwargs.setdefault("sleep", lambda _s: None)
    return RetryPolicy(**kwargs)


class TestClassification:
    @pytest.mark.parametrize("etype", [
        "RunTimeoutError", "OSError", "BrokenProcessPool", "MemoryError",
        "EOFError", "BrokenPipeError",
    ])
    def test_transient_types(self, etype):
        assert classify_failure({"kind": "error", "type": etype}) == TRANSIENT

    @pytest.mark.parametrize("etype", [
        "SimulationError", "InvariantViolation", "CompileError", "KeyError",
        "ValueError", "ZeroDivisionError", "",
    ])
    def test_deterministic_types(self, etype):
        assert (classify_failure({"kind": "error", "type": etype})
                == DETERMINISTIC)


class TestRetryPolicy:
    def test_backoff_is_capped_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_cap_s=3.0)
        delays = [policy.backoff_s(r) for r in range(1, 6)]
        assert delays == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCheckpointJournal:
    def test_round_trip_latest_wins(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "j.jsonl"))
        journal.append("done", "k1", "t1", {"kind": "timing", "n": 1})
        journal.append("done", "k2", "t2", {"kind": "timing", "n": 2})
        journal.append("done", "k1", "t1", {"kind": "timing", "n": 3})
        journal.close()
        records, salvage = journal.load()
        assert salvage == {"lines": 3, "replayed": 3, "torn": 0,
                           "ignored_tail": 0}
        assert records["k1"]["payload"] == {"kind": "timing", "n": 3}
        assert records["k2"]["task"] == "t2"

    def test_torn_tail_salvages_prefix(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        journal.append("done", "k1", "t1", {"n": 1})
        journal.append("done", "k2", "t2", {"n": 2})
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"record": "done", "key": "k3", "tas')
        records, salvage = journal.load()
        assert sorted(records) == ["k1", "k2"]
        assert salvage["torn"] == 1

    def test_bitflipped_line_stops_replay(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        journal = CheckpointJournal(path)
        journal.append("done", "k1", "t1", {"n": 1})
        journal.append("done", "k2", "t2", {"n": 2})
        journal.close()
        lines = open(path).readlines()
        lines[0] = lines[0].replace('"n":1', '"n":9')
        with open(path, "w") as handle:
            handle.writelines(lines)
        records, salvage = journal.load()
        # The corrupted first line fails its checksum; replay stops there,
        # so nothing after it is trusted either (append-only contract).
        assert records == {}
        assert salvage["torn"] == 1
        assert salvage["ignored_tail"] == 1

    def test_missing_file_is_empty(self, tmp_path):
        records, salvage = CheckpointJournal(str(tmp_path / "nope")).load()
        assert records == {}
        assert salvage["replayed"] == 0


class TestSupervisedSweep:
    def test_clean_grid_completes_without_retries(self, disk_cache, tmp_path):
        tasks = _grid("clean", count=2)
        report = supervised_sweep(tasks, jobs=1,
                                  checkpoint=str(tmp_path / "j.jsonl"))
        assert report.ok
        assert report.manifest["completed"] == [t.task_id for t in tasks]
        assert report.telemetry["retries_used"] == 0
        assert report.telemetry["rounds"] == 1

    def test_transient_failure_retries_then_succeeds(self, disk_cache,
                                                     tmp_path):
        tasks = _grid("retry", count=2, chaos_on=0,
                      chaos={"mode": "raise-transient",
                             "once": str(tmp_path / "flag")})
        slept = []
        report = supervised_sweep(
            tasks, jobs=1,
            policy=RetryPolicy(sleep=slept.append, backoff_base_s=0.25),
        )
        assert report.ok
        assert report.telemetry["retries_used"] == 1
        assert report.telemetry["rounds"] == 2
        assert slept == [0.25]  # one backoff before the retry round

    def test_deterministic_failure_quarantines_immediately(self, disk_cache,
                                                           tmp_path):
        quarantine = str(tmp_path / "quarantine")
        tasks = _grid("det", count=2, chaos_on=1,
                      chaos={"mode": "raise-deterministic"})
        report = supervised_sweep(tasks, jobs=1, policy=no_sleep(),
                                  quarantine_dir=quarantine)
        assert not report.ok
        assert report.manifest["failed"] == [tasks[1].task_id]
        entry = report.manifest["quarantined"][0]
        assert entry["class"] == DETERMINISTIC
        assert entry["type"] == "SimulationError"
        # No retry was burned on a failure that cannot go away.
        assert report.telemetry["retries_used"] == 0
        dumps = [f for f in os.listdir(quarantine) if f.startswith("crash-")]
        assert len(dumps) == 1
        # The healthy task still completed.
        assert report.manifest["completed"] == [tasks[0].task_id]

    def test_retry_budget_bounds_total_retries(self, disk_cache):
        # Every attempt fails transiently; budget 1 allows exactly one
        # retry across the sweep even though max_attempts would allow more.
        tasks = _grid("budget", count=1, chaos_on=0,
                      chaos={"mode": "raise-transient"})
        report = supervised_sweep(
            tasks, jobs=1, policy=no_sleep(max_attempts=5, retry_budget=1),
        )
        assert not report.ok
        assert report.telemetry["retries_used"] == 1
        assert report.telemetry["retry_budget_left"] == 0
        assert report.telemetry["attempts"][tasks[0].task_id] == 2

    def test_attempt_cap_quarantines_as_transient(self, disk_cache, tmp_path):
        quarantine = str(tmp_path / "q")
        tasks = _grid("cap", count=1, chaos_on=0,
                      chaos={"mode": "raise-transient"})
        report = supervised_sweep(
            tasks, jobs=1, policy=no_sleep(max_attempts=3),
            quarantine_dir=quarantine,
        )
        entry = report.manifest["quarantined"][0]
        assert entry["class"] == TRANSIENT
        assert report.telemetry["attempts"][tasks[0].task_id] == 3


class TestCheckpointResume:
    def run_interrupted_then_resume(self, tasks, journal, cut, jobs=1):
        with pytest.raises(SweepInterrupted) as excinfo:
            supervised_sweep(tasks, jobs=jobs, checkpoint=journal,
                             interrupt_after=cut)
        assert excinfo.value.completed == cut
        clear_memo()
        return supervised_sweep(tasks, jobs=jobs, checkpoint=journal,
                                resume=True)

    def test_resume_skips_done_work_and_matches(self, disk_cache, tmp_path):
        tasks = _grid("resume", count=3)
        reference = supervised_sweep(tasks, jobs=1,
                                     checkpoint=str(tmp_path / "ref.jsonl"))
        cache_mod.configure(str(tmp_path / "cache2"), enabled=True)
        clear_memo()
        resumed = self.run_interrupted_then_resume(
            tasks, str(tmp_path / "j.jsonl"), cut=2
        )
        assert resumed.telemetry["resumed"] == [t.task_id for t in tasks[:2]]
        assert resumed.results == reference.results
        assert resumed.manifest_bytes() == reference.manifest_bytes()

    def test_golden_resume_manifest_fixture(self, disk_cache, tmp_path):
        """Both the uninterrupted and the resumed manifest are pinned to the
        golden fixture byte-for-byte."""
        golden = open(os.path.join(FIXTURES,
                                   "golden_resume_manifest.json"), "rb").read()
        tasks = _grid("golden", count=3)
        uninterrupted = supervised_sweep(
            tasks, jobs=1, checkpoint=str(tmp_path / "a.jsonl")
        )
        assert uninterrupted.manifest_bytes() == golden
        cache_mod.configure(str(tmp_path / "cache2"), enabled=True)
        clear_memo()
        resumed = self.run_interrupted_then_resume(
            tasks, str(tmp_path / "b.jsonl"), cut=1
        )
        assert resumed.manifest_bytes() == golden

    def test_resume_keyed_on_task_identity_not_id(self, disk_cache, tmp_path):
        """A journal entry is replayed only for the exact same grid point:
        same task id with a different config re-runs instead of aliasing."""
        journal = str(tmp_path / "j.jsonl")
        tasks = _grid("keyed", count=2)
        supervised_sweep(tasks, jobs=1, checkpoint=journal)
        clear_memo()
        changed = _grid("keyed", count=2)
        changed[0].config = changed[0].config.copy(
            mem_latency=changed[0].config.mem_latency + 7
        )
        resumed = supervised_sweep(changed, jobs=1, checkpoint=journal,
                                   resume=True)
        assert resumed.telemetry["resumed"] == [changed[1].task_id]
        assert resumed.ok

    def test_quarantined_tasks_resume_without_rerunning(self, disk_cache,
                                                        tmp_path):
        journal = str(tmp_path / "j.jsonl")
        tasks = _grid("qres", count=2, chaos_on=0,
                      chaos={"mode": "raise-deterministic"})
        first = supervised_sweep(tasks, jobs=1, checkpoint=journal,
                                 policy=no_sleep())
        assert first.manifest["failed"] == [tasks[0].task_id]
        clear_memo()
        resumed = supervised_sweep(tasks, jobs=1, checkpoint=journal,
                                   resume=True, policy=no_sleep())
        assert sorted(resumed.telemetry["resumed"]) == sorted(
            t.task_id for t in tasks
        )
        assert resumed.telemetry["rounds"] == 0  # nothing re-ran
        assert resumed.manifest_bytes() == first.manifest_bytes()

    def test_fresh_run_discards_stale_journal(self, disk_cache, tmp_path):
        journal = str(tmp_path / "j.jsonl")
        tasks = _grid("fresh", count=2)
        supervised_sweep(tasks, jobs=1, checkpoint=journal)
        clear_memo()
        # Without resume=True the journal must not leak into a fresh sweep.
        report = supervised_sweep(tasks, jobs=1, checkpoint=journal)
        assert report.telemetry["resumed"] == []

    def test_interrupt_payload_error_classifies(self, disk_cache):
        # payload_or_raise on a quarantined worker payload still raises.
        from repro.harness.sweep import payload_or_raise

        tasks = _grid("perr", count=1, chaos_on=0,
                      chaos={"mode": "raise-deterministic"})
        report = supervised_sweep(tasks, jobs=1, policy=no_sleep())
        with pytest.raises(SimulationError):
            payload_or_raise(report.results[tasks[0].task_id])
