"""Property suite: the compiled fast path is invisible to random programs.

Hypothesis generates whole control-flow graphs (the same structured
generator as :mod:`tests.test_fuzz_programs`) and checks the threaded-code
interpreter is observationally identical to the baseline ``step_op`` loop
on every registered ISA: same outputs, same step counts, same final
architectural checkpoint — including partial runs cut off at a random
``max_steps``, which forces the mid-block landing paths.

Seeds are pinned the same way as the fuzz suite: override with
``REPRO_FUZZ_SEED=<seed>`` to explore, keep the default for CI.
"""

import pytest

from hypothesis import given, note, seed, settings, strategies as st

from repro.core.api import build, run_functional
from tests.test_fuzz_programs import FUZZ_SEED, block


def _assert_compiled_invisible(source, max_steps=500_000):
    result = build(source)
    for label, binary in result.all().items():
        base = run_functional(binary, max_steps=max_steps, compiled=False)
        fast = run_functional(binary, max_steps=max_steps, compiled=True)
        assert fast.output == base.output, label
        assert fast.run_result.steps == base.run_result.steps, label


@seed(FUZZ_SEED)
@settings(max_examples=15, deadline=None)
@given(block(), st.integers(min_value=1, max_value=5))
def test_compiled_matches_baseline_on_random_cfgs(body, lim):
    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    source = f"""
    int buf[8];
    int helper(int x) {{ return x * 3 - 1; }}
    int main() {{
        int acc = 1;
        int tmp = 0;
        int lim = {lim};
        for (int i = 0; i < lim + 2; i++) {{
            {body}
        }}
        __out(acc);
        __out(buf[2]); __out(buf[5]);
        __out(helper(acc & 127));
        return 0;
    }}
    """
    _assert_compiled_invisible(source)


@pytest.fixture(scope="module")
def partial_run_binaries():
    source = """
    int buf[8];
    int main() {
        int acc = 1;
        int tmp = 0;
        for (int i = 0; i < 24; i++) {
            if ((acc ^ i) & 1) { acc += buf[i & 7] + 3; }
            else { buf[i & 7] = acc - i; tmp += 2; }
            while (tmp > 0) { acc += tmp & 5; tmp -= 2; }
        }
        __out(acc);
        return 0;
    }
    """
    return build(source).all()


@seed(FUZZ_SEED)
@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=4000))
def test_partial_runs_stop_on_the_same_instruction(partial_run_binaries,
                                                   max_steps):
    # Random cut points land mid-block; the compiled driver must fall back
    # to per-op handlers and leave bit-identical state at the boundary.
    for label, binary in partial_run_binaries.items():
        base = binary.interpreter(compiled=False)
        fast = binary.interpreter(compiled=True)
        rb = base.run(max_steps=max_steps)
        rf = fast.run(max_steps=max_steps)
        assert rf.steps == rb.steps, label
        assert rf.status == rb.status, label
        assert fast.checkpoint() == base.checkpoint(), (label, max_steps)
