"""Experiment harness tests (the cheap, functional-only experiments plus
plumbing; the full timing figures are exercised by the benchmark suite)."""

import time

import pytest

from repro.common.errors import RunTimeoutError
from repro.harness import (
    table1,
    fig15_instruction_mix,
    fig16_distance_distribution,
    fig17_power,
    format_table,
    format_bars,
    timed_run,
    deadline,
    ALL_EXPERIMENTS,
)
from repro.core.configs import straight_2way


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "bb": "xy"}, {"a": 222, "bb": "z"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty(self):
        assert "no rows" in format_table([])

    def test_format_bars_normalizes_to_peak(self):
        text = format_bars([("x", 1.0), ("y", 0.5)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestCheapExperiments:
    def test_table1_has_four_models(self):
        result = table1()
        assert len(result["rows"]) == 4
        assert "Table I" in result["text"]

    def test_fig15_shape(self):
        result = fig15_instruction_mix()
        rows = {r["model"]: r for r in result["rows"]}
        # SS executes no RMOVs; RAW executes more than RE+.
        assert rows["SS"]["rmov"] == 0
        assert rows["STRAIGHT-RAW"]["rmov"] > rows["STRAIGHT-RE+"]["rmov"] > 0
        assert rows["STRAIGHT-RAW"]["total_norm"] > rows["STRAIGHT-RE+"]["total_norm"] > 1.0
        # Paper: RE+ cuts the added RMOVs to roughly 20% of the SS count.
        assert rows["STRAIGHT-RE+"]["rmov"] / rows["SS"]["total"] < 0.35

    def test_fig16_shape(self):
        result = fig16_distance_distribution()
        by_key = {
            (r["workload"], r["distance<="]): r["cumulative_fraction"]
            for r in result["rows"]
            if isinstance(r["distance<="], int)
        }
        for workload in ("dhrystone", "coremark"):
            # Paper: 30-40%+ of operands are distance 1; most within 32.
            assert by_key[(workload, 1)] > 0.25
            assert by_key[(workload, 32)] > 0.9
            # CDF is monotone.
            previous = 0.0
            for point in (1, 2, 4, 8, 16, 32, 64, 128):
                assert by_key[(workload, point)] >= previous
                previous = by_key[(workload, point)]

    def test_fig17_shape(self):
        result = fig17_power()
        rows = {
            (r["module"], r["clock"], r["arch"]): r["relative_power"]
            for r in result["rows"]
        }
        # Rename power almost removed at every frequency.
        for clock in ("1.0x", "2.5x", "4.0x"):
            assert rows[("rename", clock, "STRAIGHT")] < 0.2 * rows[
                ("rename", clock, "SS")
            ]
        # Register file / other slightly higher for STRAIGHT (higher IPC),
        # within the paper's reported bounds-ish (<= +18% / +5% at 1.0x).
        assert 0.90 <= rows[("regfile", "1.0x", "STRAIGHT")] < 1.30
        assert 0.85 <= rows[("other", "1.0x", "STRAIGHT")] < 1.15
        # Everything grows with the clock target.
        assert rows[("other", "4.0x", "SS")] > rows[("other", "1.0x", "SS")]

    def test_registry_covers_all_figures(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "fig15",
            "fig16",
            "sensitivity_maxdist",
            "fig17",
            "attribution",
            "ablation_re_plus",
            "ablation_recovery",
            "ablation_spadd",
            "isa_grid",
            "isa_density",
            "static_ilp",
            "sampled_error",
        }

    def test_static_ilp_declares_the_isa_grid_tasks(self):
        from repro.harness import grid_tasks

        tasks = grid_tasks(["static_ilp"])
        # 2 workloads x 2 machine classes x 3 ISAs.
        assert len(tasks) == 12
        assert list(map(repr, grid_tasks(["isa_grid"]))) == list(
            map(repr, tasks)
        )


class TestRunnerCache:
    def test_timed_run_is_memoized(self):
        first = timed_run("dhrystone", "STRAIGHT-RE+", straight_2way())
        second = timed_run("dhrystone", "STRAIGHT-RE+", straight_2way())
        assert first is second


class TestNestedDeadline:
    """Regression tests: an inner ``deadline`` must not clobber the outer
    SIGALRM itimer (the pre-PR6 bug cancelled the outer budget for good)."""

    def test_outer_survives_completed_inner(self):
        # Outer 0.15s, inner 0.02s that finishes instantly: the outer budget
        # must keep ticking and still fire on the work after the inner block.
        with pytest.raises(RunTimeoutError, match="outer"):
            with deadline(0.15, "outer"):
                with deadline(0.02, "inner"):
                    pass  # inner completes untriggered
                time.sleep(1.0)  # outer must interrupt this

    def test_inner_fires_first_then_outer_still_armed(self):
        fired = []
        with pytest.raises(RunTimeoutError, match="outer"):
            with deadline(0.15, "outer"):
                try:
                    with deadline(0.02, "inner"):
                        time.sleep(1.0)
                except RunTimeoutError:
                    fired.append("inner")
                time.sleep(1.0)  # outer budget still live after inner fired
        assert fired == ["inner"]

    def test_outer_exhausted_during_inner_fires_on_exit(self):
        # The inner block outlives the whole outer budget; the outer alarm
        # must fire right after the inner one is dismantled, not vanish.
        with pytest.raises(RunTimeoutError, match="outer"):
            with deadline(0.05, "outer"):
                try:
                    with deadline(0.02, "inner"):
                        time.sleep(0.1)
                except RunTimeoutError:
                    pass
                time.sleep(1.0)

    def test_sequential_deadlines_are_independent(self):
        with deadline(0.2, "a"):
            pass
        # No stray alarm may leak from the completed block.
        time.sleep(0.25)

    def test_zero_seconds_is_a_no_op(self):
        with deadline(0, "none"):
            time.sleep(0.01)


class TestDeadlineFallbackModes:
    """The documented non-SIGALRM enforcement paths (PR 10, satellite b):
    worker threads auto-select the thread-timer mode, and ``poll`` mode
    enforces cooperatively via :func:`poll_deadline`."""

    def test_mode_autoselect_main_vs_worker_thread(self):
        import threading

        from repro.harness.runner import deadline_mode

        assert deadline_mode() == "sigalrm"
        seen = []
        worker = threading.Thread(target=lambda: seen.append(deadline_mode()))
        worker.start()
        worker.join()
        assert seen == ["timer"]

    def test_timer_mode_fires_in_worker_thread(self):
        import threading

        outcome = {}

        def work():
            try:
                with deadline(0.05, "threaded"):
                    # A busy loop, not sleep: async-exception delivery lands
                    # at a bytecode boundary, which sleep() can outlive.
                    spin_until = time.monotonic() + 5.0
                    while time.monotonic() < spin_until:
                        pass
                outcome["result"] = "completed"
            except RunTimeoutError as exc:
                outcome["result"] = "timeout"
                outcome["message"] = str(exc)

        worker = threading.Thread(target=work)
        started = time.monotonic()
        worker.start()
        worker.join(10.0)
        assert outcome["result"] == "timeout"
        assert "threaded" in outcome["message"]
        assert time.monotonic() - started < 5.0

    def test_timer_mode_untriggered_block_is_clean(self):
        import threading

        outcome = {}

        def work():
            try:
                with deadline(5.0, "plenty"):
                    outcome["inside"] = True
                # No stray async exception may land after a clean exit.
                time.sleep(0.05)
                outcome["result"] = "completed"
            except RunTimeoutError:  # pragma: no cover - the failure mode
                outcome["result"] = "timeout"

        worker = threading.Thread(target=work)
        worker.start()
        worker.join(10.0)
        assert outcome == {"inside": True, "result": "completed"}

    def test_poll_mode_enforces_cooperatively(self):
        from repro.harness.runner import poll_deadline

        with pytest.raises(RunTimeoutError, match="polled"):
            with deadline(0.03, "polled", mode="poll"):
                spin_until = time.monotonic() + 5.0
                while time.monotonic() < spin_until:
                    poll_deadline()

    def test_poll_deadline_checks_outer_scopes_too(self):
        from repro.harness.runner import poll_deadline

        with pytest.raises(RunTimeoutError, match="outer"):
            with deadline(0.03, "outer", mode="poll"):
                time.sleep(0.05)  # outer budget now exhausted
                with deadline(5.0, "inner", mode="poll"):
                    poll_deadline()

    def test_sigalrm_mode_rejected_off_main_thread(self):
        import threading

        errors = []

        def work():
            try:
                with deadline(0.1, "x", mode="sigalrm"):
                    pass
            except ValueError as exc:
                errors.append(str(exc))

        worker = threading.Thread(target=work)
        worker.start()
        worker.join()
        assert errors and "main thread" in errors[0]

    def test_explicit_timer_mode_on_main_thread(self):
        # The serve executor's inline path requests auto mode inside a
        # worker thread; explicitly forcing timer on the main thread must
        # behave identically (the mode is thread-agnostic).
        with pytest.raises(RunTimeoutError, match="forced"):
            with deadline(0.05, "forced", mode="timer"):
                spin_until = time.monotonic() + 5.0
                while time.monotonic() < spin_until:
                    pass
