"""Pre-decoded hot path: decode-once sharing and bit-exact equivalence."""

from repro.core.api import build
from repro.harness.bench import _seed_style_run
from repro.straight.predecode import decode_program

SOURCE = """
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int a[32];
int main() {
    int s = 0;
    for (int i = 0; i < 32; i++) { a[i] = i * 7 - 3; }
    for (int i = 0; i < 32; i += 3) { s += a[i]; }
    s += fib(9);
    s = s * 2 - s / 3;
    __out(s);
    return 0;
}
"""


def _binary():
    return build(SOURCE).all()["STRAIGHT-RE+"]


class TestDecodeProgram:
    def test_decode_is_memoized_on_the_program(self):
        binary = _binary()
        assert decode_program(binary.program) is decode_program(binary.program)

    def test_interpreters_share_one_decode(self):
        binary = _binary()
        first = binary.interpreter()
        second = binary.interpreter()
        assert first.decoded is second.decoded
        assert len(first.decoded) == len(binary.program.instrs)

    def test_decoded_records_mirror_the_instructions(self):
        binary = _binary()
        for op, instr in zip(decode_program(binary.program),
                             binary.program.instrs):
            assert op.instr is instr
            assert op.mnemonic == instr.mnemonic
            assert op.op_class == instr.op_class
            assert op.srcs == instr.srcs


class TestEquivalence:
    def test_fast_path_matches_per_step_decode_reference(self):
        """run() and the seed-style decode-every-step loop agree exactly."""
        binary = _binary()
        fast = binary.interpreter()
        result = fast.run(10_000_000)
        slow = binary.interpreter()
        steps = _seed_style_run(slow, 10_000_000)
        assert result.status == "halt" and slow.halted
        assert result.steps == steps
        assert result.output == slow.output
        assert fast.regs == slow.regs
        assert fast.memory == slow.memory
        assert fast.sp == slow.sp
        assert fast.seq == slow.seq

    def test_step_api_matches_run(self):
        """External steppers (lockstep, fault injection) stay bit-exact."""
        binary = _binary()
        reference = binary.interpreter(collect_trace=True)
        reference.run(10_000_000)
        stepped = binary.interpreter(collect_trace=True)
        instrs = binary.program.instrs
        while not stepped.halted:
            stepped.step(instrs[stepped.pc_index])
        assert stepped.output == reference.output
        assert len(stepped.trace) == len(reference.trace)
        for mine, ref in zip(stepped.trace, reference.trace):
            assert (mine.pc, mine.mnemonic, mine.dest, mine.srcs,
                    mine.dest_value, mine.next_pc, mine.taken) == \
                   (ref.pc, ref.mnemonic, ref.dest, ref.srcs,
                    ref.dest_value, ref.next_pc, ref.taken)

    def test_trace_is_control_matches_changes_flow(self):
        binary = _binary()
        interp = binary.interpreter(collect_trace=True)
        interp.run(10_000_000)
        assert interp.trace
        for entry in interp.trace:
            assert entry.is_control == entry.changes_flow()
            assert entry.is_control == (entry.op_class in ("branch", "jump"))
