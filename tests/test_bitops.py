"""Unit + property tests for 32-bit word arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    MASK32,
    wrap32,
    to_signed,
    to_unsigned,
    sext,
    bits,
    fits_signed,
    fits_unsigned,
)

u32 = st.integers(min_value=0, max_value=MASK32)
any_int = st.integers(min_value=-(2**40), max_value=2**40)


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(0) == 0
        assert wrap32(MASK32) == MASK32

    def test_wraps_overflow(self):
        assert wrap32(MASK32 + 1) == 0
        assert wrap32(2**32 + 5) == 5

    def test_wraps_negative(self):
        assert wrap32(-1) == MASK32
        assert wrap32(-(2**31)) == 0x8000_0000

    @given(any_int)
    def test_always_in_range(self, value):
        assert 0 <= wrap32(value) <= MASK32

    @given(any_int, any_int)
    def test_additive_homomorphism(self, a, b):
        assert wrap32(wrap32(a) + wrap32(b)) == wrap32(a + b)


class TestToSigned:
    def test_positive_unchanged(self):
        assert to_signed(5) == 5
        assert to_signed(0x7FFF_FFFF) == 2**31 - 1

    def test_negative_boundary(self):
        assert to_signed(0x8000_0000) == -(2**31)
        assert to_signed(MASK32) == -1

    @given(u32)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(u32)
    def test_range(self, value):
        assert -(2**31) <= to_signed(value) < 2**31


class TestSext:
    def test_positive(self):
        assert sext(0b0111, 4) == 7

    def test_negative(self):
        assert sext(0b1000, 4) == -8
        assert sext(0xFFF, 12) == -1

    @given(st.integers(min_value=0, max_value=2**15 - 1))
    def test_sext_15_matches_straight_imm_range(self, value):
        result = sext(value, 15)
        assert -(2**14) <= result < 2**14

    @given(st.integers(min_value=1, max_value=31), st.integers(min_value=0))
    def test_idempotent(self, width, raw):
        once = sext(raw, width)
        assert sext(once & ((1 << width) - 1), width) == once


class TestBits:
    def test_basic_extraction(self):
        assert bits(0b1011_0110, 5, 2) == 0b1101

    def test_full_word(self):
        assert bits(MASK32, 31, 0) == MASK32

    def test_single_bit(self):
        assert bits(0b100, 2, 2) == 1
        assert bits(0b100, 1, 1) == 0

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            bits(0, 1, 3)


class TestFits:
    def test_fits_signed_boundaries(self):
        assert fits_signed(-16, 5)
        assert fits_signed(15, 5)
        assert not fits_signed(16, 5)
        assert not fits_signed(-17, 5)

    def test_fits_unsigned_boundaries(self):
        assert fits_unsigned(0, 5)
        assert fits_unsigned(31, 5)
        assert not fits_unsigned(32, 5)
        assert not fits_unsigned(-1, 5)

    @given(st.integers(min_value=1, max_value=31), any_int)
    def test_fits_signed_matches_sext(self, width, value):
        if fits_signed(value, width):
            assert sext(value & ((1 << width) - 1), width) == value
