"""Unit + property tests for 32-bit word arithmetic helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.common.bitops import (
    MASK32,
    FieldOverflow,
    wrap32,
    to_signed,
    to_unsigned,
    sext,
    bits,
    fits_signed,
    fits_unsigned,
    signed_field,
    unsigned_field,
)

u32 = st.integers(min_value=0, max_value=MASK32)
any_int = st.integers(min_value=-(2**40), max_value=2**40)


class TestWrap32:
    def test_identity_in_range(self):
        assert wrap32(0) == 0
        assert wrap32(MASK32) == MASK32

    def test_wraps_overflow(self):
        assert wrap32(MASK32 + 1) == 0
        assert wrap32(2**32 + 5) == 5

    def test_wraps_negative(self):
        assert wrap32(-1) == MASK32
        assert wrap32(-(2**31)) == 0x8000_0000

    @given(any_int)
    def test_always_in_range(self, value):
        assert 0 <= wrap32(value) <= MASK32

    @given(any_int, any_int)
    def test_additive_homomorphism(self, a, b):
        assert wrap32(wrap32(a) + wrap32(b)) == wrap32(a + b)


class TestToSigned:
    def test_positive_unchanged(self):
        assert to_signed(5) == 5
        assert to_signed(0x7FFF_FFFF) == 2**31 - 1

    def test_negative_boundary(self):
        assert to_signed(0x8000_0000) == -(2**31)
        assert to_signed(MASK32) == -1

    @given(u32)
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    @given(u32)
    def test_range(self, value):
        assert -(2**31) <= to_signed(value) < 2**31


class TestSext:
    def test_positive(self):
        assert sext(0b0111, 4) == 7

    def test_negative(self):
        assert sext(0b1000, 4) == -8
        assert sext(0xFFF, 12) == -1

    @given(st.integers(min_value=0, max_value=2**15 - 1))
    def test_sext_15_matches_straight_imm_range(self, value):
        result = sext(value, 15)
        assert -(2**14) <= result < 2**14

    @given(st.integers(min_value=1, max_value=31), st.integers(min_value=0))
    def test_idempotent(self, width, raw):
        once = sext(raw, width)
        assert sext(once & ((1 << width) - 1), width) == once


class TestBits:
    def test_basic_extraction(self):
        assert bits(0b1011_0110, 5, 2) == 0b1101

    def test_full_word(self):
        assert bits(MASK32, 31, 0) == MASK32

    def test_single_bit(self):
        assert bits(0b100, 2, 2) == 1
        assert bits(0b100, 1, 1) == 0

    def test_invalid_range_raises(self):
        with pytest.raises(ValueError):
            bits(0, 1, 3)


class TestFits:
    def test_fits_signed_boundaries(self):
        assert fits_signed(-16, 5)
        assert fits_signed(15, 5)
        assert not fits_signed(16, 5)
        assert not fits_signed(-17, 5)

    def test_fits_unsigned_boundaries(self):
        assert fits_unsigned(0, 5)
        assert fits_unsigned(31, 5)
        assert not fits_unsigned(32, 5)
        assert not fits_unsigned(-1, 5)

    @given(st.integers(min_value=1, max_value=31), any_int)
    def test_fits_signed_matches_sext(self, width, value):
        if fits_signed(value, width):
            assert sext(value & ((1 << width) - 1), width) == value


class TestEncodeFields:
    """The shared immediate-field helpers every ISA encoder goes through."""

    #: Field widths the encoders actually use (STRAIGHT imm5/imm15/imm20/
    #: imm25, RV32IM imm12/imm13/imm20/imm21), plus the 1-bit degenerate.
    WIDTHS = (1, 5, 12, 13, 15, 20, 21, 25)

    def test_signed_field_exhaustive_boundaries(self):
        for width in self.WIDTHS:
            low, high = -(1 << (width - 1)), (1 << (width - 1)) - 1
            assert signed_field(low, width) == 1 << (width - 1)
            assert signed_field(high, width) == high
            assert signed_field(-1, width) == (1 << width) - 1
            assert signed_field(0, width) == 0
            for bad in (low - 1, high + 1):
                with pytest.raises(FieldOverflow):
                    signed_field(bad, width)

    def test_unsigned_field_exhaustive_boundaries(self):
        for width in self.WIDTHS:
            high = (1 << width) - 1
            assert unsigned_field(0, width) == 0
            assert unsigned_field(high, width) == high
            for bad in (-1, high + 1):
                with pytest.raises(FieldOverflow):
                    unsigned_field(bad, width)

    def test_overflow_carries_structured_context(self):
        with pytest.raises(FieldOverflow) as info:
            signed_field(1 << 14, 15)
        err = info.value
        assert err.value == 1 << 14
        assert err.width == 15
        assert err.signed is True
        assert "15-bit signed" in str(err)
        with pytest.raises(FieldOverflow) as info:
            unsigned_field(-3, 20)
        assert info.value.signed is False
        assert "20-bit unsigned" in str(info.value)

    def test_field_overflow_is_a_value_error(self):
        assert issubclass(FieldOverflow, ValueError)

    @given(st.integers(min_value=1, max_value=31), any_int)
    def test_signed_field_roundtrips_through_sext(self, width, value):
        if fits_signed(value, width):
            assert sext(signed_field(value, width), width) == value
        else:
            with pytest.raises(FieldOverflow):
                signed_field(value, width)

    @given(st.integers(min_value=1, max_value=31), any_int)
    def test_unsigned_field_is_identity_in_range(self, width, value):
        if fits_unsigned(value, width):
            assert unsigned_field(value, width) == value
        else:
            with pytest.raises(FieldOverflow):
                unsigned_field(value, width)
