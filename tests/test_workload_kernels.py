"""Golden-reference tests: the workload kernels vs Python re-implementations.

The cross-ISA differential tests prove the binaries agree with each other;
these prove they compute what the kernels are *supposed* to compute, by
mirroring each CoreMark-like kernel in Python and comparing the output
channel words.
"""

import pytest

from repro.common.bitops import wrap32, to_signed
from repro.core.api import build, run_functional
from repro.workloads import coremark, dhrystone


# -- Python mirrors of the mini-C kernels ------------------------------------


class PyCoreMark:
    def __init__(self):
        self.crc = 0xFFFFFFFF
        self.lcg = 0
        self.state_counts = [0] * 8

    # mini-C: lcg_state = lcg_state * 1103515245 + 12345;
    #         return (lcg_state >> 16) & 0x7FFF;   (arithmetic >> on int)
    def lcg_next(self):
        self.lcg = wrap32(self.lcg * 1103515245 + 12345)
        return (to_signed(self.lcg) >> 16) & 0x7FFF

    def crc32_step(self, value):
        cur = (self.crc ^ wrap32(value)) & 0xFFFFFFFF
        for _ in range(8):
            if cur & 1:
                cur = (cur >> 1) ^ 0xEDB88320
            else:
                cur >>= 1
        self.crc = cur

    @staticmethod
    def _mod(a, b):
        """C-style truncated remainder."""
        sa = to_signed(wrap32(a))
        if sa == 0 or b == 0:
            return 0 if b else sa
        result = abs(sa) % abs(b)
        return -result if sa < 0 else result

    def list_bench(self, n, seed):
        self.lcg = seed
        data = [self._mod(self.lcg_next(), 97) for _ in range(n)]
        nxt = list(range(1, n)) + [-1]
        # find
        target = self._mod(seed * 11, 97)
        node, found = 0, -1
        while node != -1:
            if data[node] == target:
                found = node
                break
            node = nxt[node]
        self.crc32_step(wrap32(found))
        # reverse
        prev, node = -1, 0
        while node != -1:
            nxt[node], prev, node = prev, node, nxt[node]
        head = prev
        self.crc32_step(data[head])
        # insertion sort on data
        order = []
        node = head
        while node != -1:
            order.append(node)
            node = nxt[node]
        sorted_nodes = sorted(order, key=lambda k: data[k])
        checksum = 0
        for node in sorted_nodes:
            checksum = wrap32(checksum * 3 + data[node])
        self.crc32_step(checksum)
        return to_signed(checksum)

    def matrix_bench(self, seed):
        self.lcg = wrap32(seed * 31 + 3)
        a = []
        b = []
        for _ in range(64):
            a.append(self._mod(self.lcg_next(), 31) - 15)
            b.append(self._mod(self.lcg_next(), 29) - 14)
        n = 8
        c = [0] * 64
        total = 0
        for i in range(n):
            for j in range(n):
                acc = sum(a[i * n + k] * b[k * n + j] for k in range(n))
                acc = to_signed(wrap32(acc))
                c[i * n + j] = acc
                total = wrap32(
                    total + (acc & 0xFFFF) - ((to_signed(wrap32(acc)) >> 16) & 0xFFFF)
                )
        self.crc32_step(total)
        extract = 0
        for v in c:
            sv = to_signed(wrap32(v))
            extract = wrap32(extract + ((sv >> 2) & 15) + ((sv >> 7) & 7))
        self.crc32_step(extract)
        return to_signed(wrap32(wrap32(total) + extract))

    def state_bench(self, seed):
        self.lcg = wrap32(seed * 7 + 1)
        stream = []
        for _ in range(64):
            sel = self._mod(self.lcg_next(), 10)
            if sel < 4:
                stream.append(48 + self._mod(self.lcg_next(), 10))
            elif sel < 6:
                stream.append(97 + self._mod(self.lcg_next(), 6))
            elif sel < 7:
                stream.append(44)
            elif sel < 8:
                stream.append(46)
            else:
                stream.append(120)
        state = 0
        for ch in stream:
            if state == 0:
                state = 1 if 48 <= ch <= 57 else 3 if ch == 120 else 0 if ch == 44 else 4
            elif state == 1:
                state = 1 if 48 <= ch <= 57 else 2 if ch == 46 else 0 if ch == 44 else 4
            elif state == 2:
                state = 2 if 48 <= ch <= 57 else 0 if ch == 44 else 4
            elif state == 3:
                if 48 <= ch <= 57 or 97 <= ch <= 102:
                    state = 3
                elif ch == 44:
                    state = 0
                else:
                    state = 4
            else:
                if ch == 44:
                    state = 0
            self.state_counts[state] += 1
        total = 0
        for s in range(5):
            total = wrap32(total * 5 + self.state_counts[s])
        self.crc32_step(total)
        return to_signed(wrap32(total))


def python_coremark(iterations):
    model = PyCoreMark()
    list_result = matrix_result = state_result = 0
    for it in range(iterations):
        seed = 17 + it * 3
        list_result = wrap32(list_result + model.list_bench(24, seed))
        matrix_result = wrap32(matrix_result + model.matrix_bench(seed))
        state_result = wrap32(state_result + model.state_bench(seed))
    return [
        list_result,
        matrix_result,
        state_result,
        model.crc,
        model.state_counts[0],
        model.state_counts[4],
    ]


class TestCoreMarkGolden:
    @pytest.mark.parametrize("iterations", [1, 2])
    def test_matches_python_reference(self, iterations):
        binaries = build(coremark.source(iterations))
        measured = run_functional(binaries.riscv).output
        expected = python_coremark(iterations)
        assert measured == expected

    def test_crc_differs_across_iteration_counts(self):
        one = run_functional(build(coremark.source(1)).riscv).output
        two = run_functional(build(coremark.source(2)).riscv).output
        assert one[3] != two[3]  # the CRC actually accumulates


class TestDhrystoneGolden:
    def test_output_stable_across_iteration_counts(self):
        """Dhrystone's final state fields are iteration-independent except
        the run-index-derived ones; check the invariant fields."""
        five = run_functional(build(dhrystone.source(5)).riscv).output
        nine = run_functional(build(dhrystone.source(9)).riscv).output
        # int_glob, bool_glob, chars, arrays are steady-state:
        assert five[:6] == nine[:6]
        # bool_checksum grows with iterations:
        assert nine[9] >= five[9]

    def test_known_steady_state(self):
        output = run_functional(build(dhrystone.source(5)).riscv).output
        int_glob, bool_glob, ch1, ch2 = output[:4]
        assert ch1 == ord("A")
        assert ch2 == ord("B")
        assert int_glob == 5
