"""Property tests: static analysis claims checked against concrete runs.

Hypothesis generates random mini-C control-flow (the same generator the
cross-ISA fuzz suite uses), the program is compiled to RV32IM, and every
claim the static passes make is checked against an actual interpretation:

* a **dead-marked definition**'s value is never read again inside the
  function before being overwritten (calls clear the obligation — a callee
  may legitimately spill/reload the register);
* every **value-range interval** contains the register's observed signed
  value at each instruction the analysis annotated.

Both are soundness obligations: a single counterexample means the lint
tier could flag live code dead or the range lattice lost a value.
"""

import os

from hypothesis import given, note, seed, settings, strategies as st

from repro.analysis import support_for
from repro.analysis.cfg import build_cfg
from repro.analysis.passes import gpr_dead_defs, gpr_value_ranges
from repro.compiler import compile_to_riscv
from repro.frontend import compile_source
from repro.riscv.interpreter import RiscvInterpreter

from tests.test_fuzz_programs import block

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260805"))

#: Generated programs are tiny loops; this bounds even the worst case.
MAX_STEPS = 200_000


def _signed(value):
    return value - (1 << 32) if value >= (1 << 31) else value


def _source(body, lim):
    return f"""
    int buf[8];
    int helper(int x) {{ return x * 2 + 1; }}
    int main() {{
        int acc = 1;
        int tmp = 0;
        int lim = {lim};
        for (int i = 0; i < lim + 2; i++) {{
            {body}
        }}
        __out(acc);
        __out(helper(acc & 255));
        return 0;
    }}
    """


def _is_call(instr):
    return instr.mnemonic in ("JAL", "JALR") and instr.rd == 1


@seed(FUZZ_SEED)
@settings(max_examples=10, deadline=None)
@given(block(), st.integers(min_value=1, max_value=4))
def test_static_claims_hold_on_concrete_run(body, lim):
    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    program = compile_to_riscv(compile_source(_source(body, lim))).link()
    support = support_for("riscv")
    cfg = build_cfg(program, support)
    dead = set(gpr_dead_defs(program, support, cfg, program.manifest))
    ranges = gpr_value_ranges(program, support, cfg)

    interp = RiscvInterpreter(program)
    tainted = set()  # regs whose last write was statically marked dead
    steps = 0
    while not interp.halted and steps < MAX_STEPS:
        index = interp.pc_index
        instr = program.instrs[index]

        for reg, (lo, hi) in ranges.get(index, {}).items():
            observed = _signed(interp.regs[reg]) if reg else 0
            assert lo <= observed <= hi, (
                f"range claim broken at index {index} ({instr.mnemonic}): "
                f"x{reg} = {observed} outside [{lo}, {hi}]"
            )

        read = tainted.intersection(support.uses(program, index))
        assert not read, (
            f"dead-def claim broken at index {index} ({instr.mnemonic}): "
            f"reads {sorted(read)} whose last write was marked dead"
        )

        if _is_call(instr):
            tainted.clear()  # the callee may spill/reload any register
        for reg in support.defs(program, index):
            tainted.discard(reg)
            if (index, reg) in dead:
                tainted.add(reg)

        interp.step(instr)
        steps += 1

    assert interp.halted, "generated program did not terminate in budget"


@seed(FUZZ_SEED)
@settings(max_examples=6, deadline=None)
@given(block(), st.integers(min_value=1, max_value=3))
def test_fuzzed_programs_verify_clean(body, lim):
    """Compiler output passes the gpr verifier for random CFG shapes."""
    from repro.riscv.verify import verify_program

    note(f"REPRO_FUZZ_SEED={FUZZ_SEED}")
    program = compile_to_riscv(compile_source(_source(body, lim))).link()
    report = verify_program(program, lint=True)
    assert not report.has_errors(), report.text()
