"""Static verifier tests: clean programs prove, violations get stable codes."""

import pytest

from repro.frontend import compile_source
from repro.compiler import compile_to_straight
from repro.common.errors import CompileError, GuardrailError
from repro.straight import link_program, parse_assembly, startup_stub
from repro.straight.isa import SInstr
from repro.analysis import CODES, build_cfg, verify_program

LOOP_CALL_SOURCE = """
int twice(int x) { return x + x; }

int main() {
    int acc = 0;
    for (int i = 0; i < 8; i++) acc += twice(i) - i;
    __out(acc);
    return 0;
}
"""


def compile_program(source, max_distance=1023, redundancy_elimination=True):
    return compile_to_straight(
        compile_source(source),
        max_distance=max_distance,
        redundancy_elimination=redundancy_elimination,
    ).link()


def codes_of(report):
    return {d.code for d in report.diagnostics}


class TestCleanPrograms:
    @pytest.mark.parametrize("re_plus", [True, False])
    @pytest.mark.parametrize("max_distance", [1023, 31])
    def test_compiled_program_proves_clean(self, re_plus, max_distance):
        program = compile_program(
            LOOP_CALL_SOURCE,
            max_distance=max_distance,
            redundancy_elimination=re_plus,
        )
        report = verify_program(program, lint=True)
        assert not report.has_errors(), report.text()
        assert not report.warnings(), report.text()

    def test_tight_bound_forces_relays_and_still_proves(self):
        # max_distance=7 forces bounding RMOV chains through the loop body.
        program = compile_program(LOOP_CALL_SOURCE, max_distance=7)
        assert any(i.mnemonic == "RMOV" for i in program.instrs)
        report = verify_program(program)
        assert not report.has_errors(), report.text()

    def test_hand_written_asm_is_structurally_clean(self):
        program = link_program(
            [
                startup_stub(),
                parse_assembly(
                    """
main:
    ADDI [0] 1
    ADDI [0] 1
    ADD [1] [2]
    OUT [1]
    JR [5]
"""
                ),
            ]
        )
        report = verify_program(program, lint=True)
        assert not report.has_errors(), report.text()

    def test_manifest_attached_by_backend(self):
        program = compile_program(LOOP_CALL_SOURCE)
        assert program.manifest is not None
        assert "main" in program.manifest["functions"]
        # The startup stub is hand-written assembly: unannotated.
        report = verify_program(program)
        assert report.stats["annotated_functions"] == 2
        assert report.stats["functions"] == 3

    def test_driver_verify_hook(self):
        compilation = compile_to_straight(compile_source(LOOP_CALL_SOURCE))
        report = compilation.verify(lint=True)
        assert not report.has_errors()

    def test_compile_with_verify_flag(self):
        compilation = compile_to_straight(
            compile_source(LOOP_CALL_SOURCE), verify=True
        )
        assert compilation.units


def verify_asm(text, max_distance=1023, lint=False, with_stub=True):
    units = [startup_stub()] if with_stub else []
    units.append(parse_assembly(text))
    program = link_program(units, max_distance=max_distance)
    return verify_program(program, lint=lint)


class TestStructuralViolations:
    def test_str006_read_before_program_start(self):
        report = verify_asm(
            "_start:\n    ADD [1] [2]\n    HALT", with_stub=False
        )
        assert "STR006" in codes_of(report)

    def test_str002_distance_exceeds_bound(self):
        report = verify_asm(
            """
main:
    ADDI [0] 1
    NOP
    NOP
    NOP
    ADD [4] [1]
    JR [6]
""",
            max_distance=3,
        )
        assert "STR002" in codes_of(report)

    def test_str003_operand_crosses_call_boundary(self):
        report = verify_asm(
            """
main:
    ADDI [0] 7
    JAL helper
    ADD [3] [0]
    JR [4]
helper:
    JR [1]
"""
        )
        assert "STR003" in codes_of(report)

    def test_str005_sp_not_restored_at_return(self):
        report = verify_asm(
            """
main:
    SPADD -8
    JR [2]
"""
        )
        assert "STR005" in codes_of(report)

    def test_str004_sp_differs_across_paths(self):
        report = verify_asm(
            """
main:
    BEZ [1] main.b
main.a:
    SPADD -4
    J main.m
main.b:
    NOP
    J main.m
main.m:
    JR [4]
"""
        )
        assert "STR004" in codes_of(report)

    def test_str007_jr_through_alu_result(self):
        report = verify_asm(
            """
main:
    ADDI [0] 5
    JR [1]
"""
        )
        assert "STR007" in codes_of(report)

    def test_str008_callee_demands_missing_value(self):
        report = verify_asm(
            """
main:
    OUT [2]
    JR [2]
"""
        )
        # main consumes entry age 2 (an argument), but the startup stub's
        # JAL provides only the return address.
        assert "STR008" in codes_of(report)

    def test_str010_jump_leaves_text_segment(self):
        unit = parse_assembly("main:\n    ADDI [0] 1")
        unit.add_instr(SInstr("J", imm=500))  # far outside the text segment
        program = link_program([startup_stub(), unit])
        report = verify_program(program)
        assert "STR010" in codes_of(report)

    def test_str009_unencodable_immediate(self):
        unit = parse_assembly("main:\n    JR [1]")
        unit.add_instr(SInstr("ADDI", [0], imm=40_000))  # > 15-bit signed
        program = link_program([startup_stub(), unit])
        report = verify_program(program)
        assert "STR009" in codes_of(report)

    def test_str105_unreachable_code(self):
        report = verify_asm(
            """
_start:
    HALT
    ADD [1] [1]
    ADD [1] [1]
""",
            with_stub=False,
            lint=True,
        )
        diags = report.by_code().get("STR105")
        assert diags and diags[0].data["count"] == 2


def manifest_entry(product, srcs=(), retval=None):
    return {"product": product, "srcs": tuple(srcs), "retval": retval}


def annotated_merge_program(consistent):
    """A diamond whose merge refresh is consistent or subtly wrong.

    Both arms re-produce the loop value ``v1`` (uid 100) for the merge
    consumer; the inconsistent variant's second arm produces a different
    logical value (uid 999) at the same age instead.
    """
    text = """
main:
    ADDI [0] 1
    BEZ [1] main.b
main.a:
    RMOV [2]
    J main.m
main.b:
    %s
    J main.m
main.m:
    OUT [2]
    JR [6]
"""
    arm_b = "RMOV [2]" if consistent else "ADDI [0] 9"
    unit = parse_assembly(text % arm_b)
    arm_product = 100 if consistent else 999
    unit.verify_manifest = {
        "function": {
            "name": "main",
            "num_args": 0,
            "returns_value": False,
            "entry_ages": {1: 50},
        },
        "instrs": [
            manifest_entry(100, srcs=(None,)),  # ADDI [0]: produces v1
            manifest_entry(3, srcs=(100,)),  # BEZ
            manifest_entry(100, srcs=(100,)),  # arm a RMOV: refreshes v1
            manifest_entry(5),  # J
            manifest_entry(
                arm_product, srcs=(100,) if consistent else (None,)
            ),  # arm b: refresh v1 or produce an unrelated value
            manifest_entry(7),  # J
            manifest_entry(8, srcs=(100,)),  # OUT: expects v1 on every path
            manifest_entry(9, srcs=(50,)),  # JR: expects the return address
        ],
    }
    return link_program([startup_stub(), unit])


class TestManifestValidation:
    def test_consistent_merge_proves(self):
        report = verify_program(annotated_merge_program(consistent=True))
        assert not report.has_errors(), report.text()

    def test_str001_merge_inconsistent_operand(self):
        report = verify_program(annotated_merge_program(consistent=False))
        assert "STR001" in codes_of(report)

    def test_str011_corrupted_distance(self):
        program = compile_program(LOOP_CALL_SOURCE)
        victim = None
        for index, instr in enumerate(program.instrs):
            if (
                index in program.manifest["instrs"]
                and instr.srcs
                and instr.srcs[0] >= 2
            ):
                victim = index
                break
        assert victim is not None
        instr = program.instrs[victim]
        instr.srcs = (instr.srcs[0] - 1,) + instr.srcs[1:]
        report = verify_program(program)
        assert report.has_errors()
        assert codes_of(report) & {"STR001", "STR011", "STR003"}

    def test_str011_zeroed_distance(self):
        program = compile_program(LOOP_CALL_SOURCE)
        for instr in program.instrs:
            if instr.mnemonic == "RMOV" and instr.srcs[0] > 0:
                instr.srcs = (0,)
                break
        report = verify_program(program)
        assert "STR011" in codes_of(report)

    def test_str012_reach_beyond_declared_args(self):
        unit = parse_assembly("main:\n    OUT [2]\n    JR [2]")
        unit.verify_manifest = {
            "function": {
                "name": "main",
                "num_args": 0,
                "returns_value": False,
                "entry_ages": {1: 50},
            },
            "instrs": [
                manifest_entry(8, srcs=(77,)),
                manifest_entry(9, srcs=(50,)),
            ],
        }
        program = link_program([startup_stub(), unit])
        report = verify_program(program)
        assert "STR012" in codes_of(report)


class TestDiagnosticsFramework:
    def test_catalog_codes_are_stable(self):
        for code in ("STR001", "STR002", "STR005", "STR007", "STR011"):
            assert CODES[code][0] == "error"
        for code in ("STR101", "STR102", "STR105"):
            assert CODES[code][0] == "warning"
        for code in ("STR103", "STR104", "STR106"):
            assert CODES[code][0] == "info"

    def test_diagnostic_location_and_origin(self):
        report = verify_asm(
            """
main:
    ADDI [0] 5
    JR [1]
"""
        )
        diag = report.by_code()["STR007"][0]
        assert diag.location == "main+1"
        assert diag.origin == 4  # 1-based line of the JR in the unit text
        assert diag.pc is not None

    def test_report_renders_text_and_json(self):
        report = verify_asm("main:\n    ADDI [0] 5\n    JR [1]")
        assert "STR007" in report.text()
        payload = report.as_dict()
        assert payload["counts"]["error"] >= 1
        assert any(d["code"] == "STR007" for d in payload["diagnostics"])

    def test_compile_verify_raises_on_corruption(self):
        # Simulate a backend bug: break the manifest invariant by hand.
        compilation = compile_to_straight(compile_source(LOOP_CALL_SOURCE))
        program = compilation.link()
        for instr in program.instrs:
            if instr.mnemonic == "RMOV" and instr.srcs[0] > 0:
                instr.srcs = (0,)
                break
        report = verify_program(program)
        assert report.has_errors()
        with pytest.raises(CompileError, match="static verification"):
            raise CompileError(
                "static verification failed:\n" + report.text(max_items=5)
            )


class TestGuardrailsIntegration:
    def test_static_precheck_passes_clean_binary(self):
        from repro.core.api import build
        from repro.guardrails import static_precheck

        binary = build(LOOP_CALL_SOURCE).straight_re
        report = static_precheck(binary)
        assert report is not None and not report.has_errors()

    def test_static_precheck_covers_riscv(self):
        # riscv gained a static verifier (RVG codes), so the precheck runs
        # on it too and compiled programs come out clean.
        from repro.core.api import build
        from repro.guardrails import static_precheck

        report = static_precheck(build(LOOP_CALL_SOURCE).riscv)
        assert report is not None and not report.has_errors()

    def test_static_precheck_raises_on_corruption(self):
        from repro.core.api import build
        from repro.guardrails import static_precheck

        binary = build(LOOP_CALL_SOURCE).straight_re
        for instr in binary.program.instrs:
            if instr.mnemonic == "RMOV" and instr.srcs[0] > 0:
                instr.srcs = (0,)
                break
        with pytest.raises(GuardrailError, match="static verification"):
            static_precheck(binary)


class TestCFG:
    def test_function_discovery_includes_uncalled(self):
        program = link_program(
            [
                startup_stub(),
                parse_assembly(
                    """
main:
    JR [1]
orphan:
    ADDI [0] 1
    JR [2]
"""
                ),
            ]
        )
        cfg = build_cfg(program)
        names = {f.name for f in cfg.functions}
        assert {"_start", "main", "orphan"} <= names
        assert not cfg.unreachable

    def test_blocks_partition_at_branches(self):
        program = compile_program(LOOP_CALL_SOURCE)
        cfg = build_cfg(program)
        main = next(f for f in cfg.functions if f.name == "main")
        assert len(main.blocks) > 1
        covered = sorted(
            i for block in main.blocks.values() for i in block.indices
        )
        assert covered == sorted(main.indices)
        for block in main.blocks.values():
            for succ in block.succs:
                assert block.start in main.blocks[succ].preds
