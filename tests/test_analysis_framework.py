"""The generic dataflow engine and the per-ISA analysis support objects."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.framework import (
    Analysis,
    BACKWARD,
    fixpoint,
    solve_backward,
    solve_forward,
    support_for,
)
from repro.common.errors import UnknownIsaError
from repro.frontend import compile_source
from repro.compiler import compile_to_riscv

SOURCE = """
int helper(int x) { return x * 2 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 5; i++) acc += helper(i);
    __out(acc);
    return 0;
}
"""


def riscv_program(source=SOURCE):
    return compile_to_riscv(compile_source(source)).link()


class TestFixpoint:
    def test_cyclic_graph_converges(self):
        # a -> b -> c -> b (cycle), sets joined by union.
        succs = {"a": ["b"], "b": ["c"], "c": ["b"]}
        gen = {"a": {"a"}, "b": {"b"}, "c": {"c"}}
        states = fixpoint(
            {"a": frozenset({"a"})},
            lambda n: succs[n],
            lambda n, s: s | gen[n],
            lambda x, y: x | y,
        )
        assert states["b"] == {"a", "b", "c"}
        assert states["c"] == {"a", "b", "c"}

    def test_unreachable_nodes_absent(self):
        states = fixpoint(
            {"a": 0},
            lambda n: [] if n == "a" else ["a"],
            lambda n, s: s,
            max,
        )
        assert set(states) == {"a"}

    def test_join_or_first_copy(self):
        # Two seeds merging: the merge node joins, not overwrites.
        succs = {"a": ["m"], "b": ["m"], "m": []}
        states = fixpoint(
            {"a": frozenset({1}), "b": frozenset({2})},
            lambda n: succs[n],
            lambda n, s: s,
            lambda x, y: x | y,
        )
        assert states["m"] == {1, 2}


class TestSolvers:
    def test_forward_covers_reachable_blocks(self):
        program = riscv_program()
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        func = next(f for f in cfg.functions if f.name == "main")
        states = solve_forward(
            func, frozenset(), lambda leader, s: s, lambda a, b: a | b
        )
        assert set(states) == set(func.blocks)

    def test_backward_reaches_entry_from_exits(self):
        program = riscv_program()
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        func = next(f for f in cfg.functions if f.name == "main")
        states = solve_backward(
            func,
            frozenset({"exit"}),
            lambda leader, s: s,
            lambda a, b: a | b,
            bottom=frozenset(),
        )
        # The exit marker must flow back to the entry block.
        assert "exit" in states[func.entry]

    def test_analysis_class_dispatches_backward(self):
        program = riscv_program()
        support = support_for("riscv")
        cfg = build_cfg(program, support)
        func = next(f for f in cfg.functions if f.name == "main")

        class Reach(Analysis):
            direction = BACKWARD

            def boundary(self, func):
                return frozenset({"exit"})

            def bottom(self, func):
                return frozenset()

            def join(self, a, b):
                return a | b

            def transfer(self, func, leader, state):
                return state

        assert "exit" in Reach().run(func)[func.entry]


class TestSupportRegistry:
    def test_three_isas_resolve(self):
        for isa, model in (
            ("straight", "distance"),
            ("riscv", "gpr"),
            ("bb", "gpr"),
        ):
            support = support_for(isa)
            assert support is not None
            assert support.name == isa
            assert support.register_model == model

    def test_unknown_isa_raises(self):
        with pytest.raises(UnknownIsaError):
            support_for("mips")

    def test_latency_uses_op_class_minimums(self):
        program = riscv_program()
        support = support_for("riscv")
        by_class = {}
        for index, instr in enumerate(program.instrs):
            by_class.setdefault(instr.op_class, support.latency(program, index))
        assert by_class["alu"] == 1
        assert by_class["load"] == 4

    def test_cfg_is_isa_generic(self):
        # The same build_cfg walks gpr programs: functions discovered by
        # call targets, blocks partitioned at that ISA's terminators.
        program = riscv_program()
        cfg = build_cfg(program, support_for("riscv"))
        names = {func.name for func in cfg.functions}
        assert {"main", "helper", "_start"} <= names
        main = next(f for f in cfg.functions if f.name == "main")
        assert len(main.blocks) > 1  # the for loop splits main
