"""SMARTS-style sampled simulation: accuracy, determinism, plumbing.

The headline guarantee lives in ``TestErrorBound``: sampled IPC lands
within 2% of the committed full-simulation golden fixtures
(``tests/fixtures/sampled_golden.json``) on the dhrystone x ISA grid, with
the schedule the bench scorecard gates on.  The rest pins the mechanics —
seeded reproducibility, the short-program fallback, segment rebasing,
stats round-tripping and sweep cache-key separation.
"""

import json
import os

import pytest

from repro.core.configs import ALL_CORES, ss_2way
from repro.harness.bench import FASTPATH_ACCURACY_PARAMS
from repro.harness.sampling import (
    SampledRunner,
    SamplingParams,
    _rebase_segment,
    simulate_sampled,
)
from repro.uarch.stats import SimStats
from repro.workloads import build_workload

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "sampled_golden.json")


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE) as fh:
        return json.load(fh)


@pytest.fixture(scope="module")
def golden_binaries(golden):
    return build_workload(golden["workload"],
                          iterations=golden["iterations"]).all()


def _accuracy_params(seed=0):
    return SamplingParams(seed=seed, **FASTPATH_ACCURACY_PARAMS)


class TestErrorBound:
    def test_fixture_matches_a_fresh_full_simulation(self, golden,
                                                     golden_binaries):
        # Guard against fixture rot: re-run the cheapest cell for real.
        from repro.core.api import simulate

        cell = golden["cells"][0]
        result = simulate(golden_binaries[cell["binary"]],
                          ALL_CORES[cell["config"]](), warm_caches=True)
        assert result.stats.cycles == cell["cycles"]
        assert result.stats.instructions == cell["instructions"]
        assert result.output == cell["output"]

    def test_sampled_ipc_within_two_percent_of_golden(self, golden,
                                                      golden_binaries):
        for cell in golden["cells"]:
            sampled = simulate_sampled(
                golden_binaries[cell["binary"]], ALL_CORES[cell["config"]](),
                _accuracy_params(), warm_caches=True,
            )
            meta = sampled.stats.sampling
            assert meta["mode"] == "sampled", cell["config"]
            ipc = sampled.stats.instructions / sampled.stats.cycles
            err = abs(ipc / cell["ipc"] - 1)
            assert err <= 0.02, (cell["config"], err, meta["windows"])
            # Error bars ride along in SimStats, as the scorecard requires.
            assert meta["ipc_ci95"] is not None
            assert meta["buckets"]
            # The functional side is exact regardless of the schedule.
            assert sampled.output == cell["output"]
            assert sampled.stats.instructions == cell["instructions"]

    def test_sampled_counters_track_the_full_run(self, golden,
                                                 golden_binaries):
        # Extrapolated event counters stay in the right ballpark (they are
        # estimates, not gated at 2% like IPC): loads/stores within 5%.
        from repro.core.api import simulate

        cell = golden["cells"][0]
        config = ALL_CORES[cell["config"]]()
        full = simulate(golden_binaries[cell["binary"]], config,
                        warm_caches=True)
        sampled = simulate_sampled(golden_binaries[cell["binary"]], config,
                                   _accuracy_params(), warm_caches=True)
        for field in ("loads", "stores", "alu_ops"):
            estimate = getattr(sampled.stats, field)
            exact = getattr(full.stats, field)
            assert abs(estimate / exact - 1) <= 0.05, field


class TestDeterminism:
    def test_same_seed_reproduces_the_sampling_dict(self, golden_binaries):
        runs = [
            simulate_sampled(golden_binaries["SS"], ss_2way(),
                             _accuracy_params(seed=7), warm_caches=True)
            for _ in range(2)
        ]
        assert (runs[0].stats.sampling == runs[1].stats.sampling)
        assert runs[0].stats.cycles == runs[1].stats.cycles

    def test_seed_lands_in_the_report(self, golden_binaries):
        sampled = simulate_sampled(golden_binaries["SS"], ss_2way(),
                                   _accuracy_params(seed=13),
                                   warm_caches=True)
        assert sampled.stats.sampling["params"]["seed"] == 13


class TestFallback:
    def test_short_program_falls_back_to_full_simulation(self, small_build):
        # SMALL_PROGRAM retires far fewer instructions than min_windows
        # periods: the runner must return the exact full result, flagged.
        binary = small_build.all()["SS"]
        sampled = simulate_sampled(binary, ss_2way(),
                                   SamplingParams(period=100_000),
                                   warm_caches=True)
        meta = sampled.stats.sampling
        assert meta["mode"] == "full-fallback"
        from repro.core.api import simulate

        full = simulate(binary, ss_2way(), warm_caches=True)
        assert sampled.stats.cycles == full.stats.cycles
        assert sampled.output == full.output


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingParams(window=0)
        with pytest.raises(ValueError):
            SamplingParams(warmup=-1)
        with pytest.raises(ValueError):
            SamplingParams(period=100, window=90, warmup=20, cooldown=0)

    def test_dict_round_trip(self):
        params = SamplingParams(period=5000, window=700, warmup=250,
                                cooldown=100, seed=3, min_windows=4,
                                functional_warming=False)
        clone = SamplingParams.from_dict(params.as_dict())
        assert clone.as_dict() == params.as_dict()

    def test_stats_sampling_survives_serialization(self):
        stats = SimStats()
        stats.cycles = 100
        stats.instructions = 250
        stats.sampling = {"mode": "sampled", "windows": 9,
                          "params": SamplingParams().as_dict()}
        clone = SimStats.from_dict(stats.as_dict())
        assert clone.sampling == stats.sampling


class TestRebase:
    def test_seq_operands_shift_to_segment_numbering(self):
        class Entry:
            def __init__(self, dest, srcs):
                self.dest = dest
                self.srcs = srcs

        segment = [Entry(1000, (998, 999)), Entry(1001, ()),
                   Entry(1002, (1001,))]
        _rebase_segment(segment, 1000)
        assert [e.dest for e in segment] == [0, 1, 2]
        assert segment[0].srcs == (-2, -1)  # pre-segment producers: retired
        assert segment[2].srcs == (1,)


class TestWarmingToggle:
    def test_functional_warming_off_still_samples(self, golden_binaries):
        params = SamplingParams(seed=0, functional_warming=False,
                                **FASTPATH_ACCURACY_PARAMS)
        sampled = simulate_sampled(golden_binaries["SS"], ss_2way(), params,
                                   warm_caches=True)
        meta = sampled.stats.sampling
        assert meta["mode"] == "sampled"
        assert meta["params"]["functional_warming"] is False

    def test_bb_frontend_skips_the_warmer(self, golden_binaries):
        # BB resolves control flow itself; the runner must not train a
        # predictor it never consults.
        runner = SampledRunner(golden_binaries["BB"], ALL_CORES["BB-2way"](),
                               _accuracy_params())
        result = runner.run(warm_caches=True)
        assert result.stats.sampling["mode"] == "sampled"
        assert result.stats.predictor_accuracy in (None, 0, 0.0, 1.0)


class TestSweepIntegration:
    def test_sampling_separates_the_result_cache_key(self, golden_binaries):
        from repro.harness.sweep import _timing_key

        binary = golden_binaries["SS"]
        config = ss_2way()
        plain = _timing_key(binary, config, warm=True)
        sampled = _timing_key(binary, config, warm=True,
                              sampling=SamplingParams().as_dict())
        assert "sampling" not in plain  # pre-existing entries keep their key
        assert sampled["sampling"] == SamplingParams().as_dict()
        assert plain != sampled

    def test_task_checkpoint_key_records_the_schedule(self):
        from repro.harness.sweep import SweepTask

        params = SamplingParams().as_dict()
        sampled = SweepTask("t", "dhrystone", binary_label="SS",
                            config=ss_2way(), sampling=params)
        plain = SweepTask("t", "dhrystone", binary_label="SS",
                          config=ss_2way())
        again = SweepTask("t", "dhrystone", binary_label="SS",
                          config=ss_2way(), sampling=dict(params))
        assert sampled.sampling == params
        assert plain.sampling is None
        assert sampled.checkpoint_key() != plain.checkpoint_key()
        assert sampled.checkpoint_key() == again.checkpoint_key()

    def test_attribution_plus_sampling_is_rejected(self):
        from repro.harness.sweep import SweepTask, execute_task

        task = SweepTask("t3", "dhrystone", binary_label="SS",
                         config=ss_2way(), attribution=True,
                         sampling=SamplingParams().as_dict())
        with pytest.raises(ValueError):
            execute_task(task)
