"""STRAIGHT backend internals: frames/spills, RE+ behaviour, emitted code
structure, and the calling convention (paper §IV)."""

import pytest

from repro.frontend import compile_source
from repro.compiler.straight_backend import compile_to_straight
from repro.compiler.straight_backend.frame import build_frame_info, RETADDR_KEY
from repro.ir.passes.split_critical_edges import split_critical_edges
from repro.straight import StraightInterpreter
from repro.core.api import build, run_functional

LOOP_WITH_CALL = """
int leaf(int x) { return x * 2 + 1; }
int main() {
    int acc = 0;
    for (int i = 0; i < 6; i++) {
        acc += leaf(i) + i;
    }
    __out(acc);
    return 0;
}
"""

LEAF_LOOP = """
int g_seed;
int main() {
    int unused_after = g_seed * 3;  // live through the loop, unused inside
    int acc = g_seed;
    for (int i = 0; i < 20; i++) acc += i * i;
    __out(acc + unused_after);
    return 0;
}
"""


class TestFrameAnalysis:
    def _frame_for(self, source, func_name, optimize):
        module = compile_source(source)
        func = module.functions[func_name]
        split_critical_edges(func)
        return build_frame_info(func, optimize=optimize), func

    def test_leaf_function_has_no_frame(self):
        frame, _ = self._frame_for(LOOP_WITH_CALL, "leaf", optimize=False)
        assert frame.frame_words == 0
        assert not frame.retaddr_spilled
        assert frame.spilled == set()

    def test_caller_spills_retaddr_and_crossers(self):
        frame, func = self._frame_for(LOOP_WITH_CALL, "main", optimize=False)
        assert frame.retaddr_spilled
        assert RETADDR_KEY in frame.slots
        # acc and i live across the call -> must have slots
        assert len(frame.spilled) >= 2

    def test_re_plus_demotes_loop_through_values(self):
        frame_raw, _ = self._frame_for(LEAF_LOOP, "main", optimize=False)
        frame_re, _ = self._frame_for(LEAF_LOOP, "main", optimize=True)
        # RAW: a leaf function spills nothing; RE+ demotes the value that is
        # live through the loop but unused inside it (paper Fig. 10(c)), and
        # the return address alongside it.
        assert frame_raw.spilled == set()
        assert len(frame_re.spilled) >= 1
        assert frame_re.retaddr_spilled

    def test_alloca_gets_frame_slot(self):
        source = "int main() { int a[4]; a[2] = 9; __out(a[2]); return 0; }"
        frame, func = self._frame_for(source, "main", optimize=False)
        assert frame.frame_words >= 4


class TestGeneratedCode:
    def test_re_plus_reduces_rmovs(self, small_build):
        raw = small_build.straight_raw.compilation
        re_plus = small_build.straight_re.compilation
        raw_rmovs = sum(s["rmovs"] for s in raw.stats.values())
        re_rmovs = sum(s["rmovs"] for s in re_plus.stats.values())
        assert re_rmovs < raw_rmovs

    def test_producer_sinking_reported(self, small_build):
        stats = small_build.straight_re.compilation.stats
        assert sum(s["sunk_producers"] for s in stats.values()) > 0

    def test_all_distances_encodable(self, small_build):
        from repro.straight.encoding import encode

        for instr in small_build.straight_re.program.instrs:
            word = encode(instr)
            assert 0 <= word < 2**32
            for distance in instr.srcs:
                assert 0 <= distance <= 1023

    def test_every_function_entry_has_label(self, small_build):
        program = small_build.straight_re.program
        for name in ("main", "sum", "fib"):
            assert name in program.labels

    def test_max_distance_respected_when_bounded(self):
        result = build(LOOP_WITH_CALL, max_distance=31)
        for instr in result.straight_re.program.instrs:
            for distance in instr.srcs:
                assert distance <= 31
        assert run_functional(result.straight_re).output == \
            run_functional(result.riscv).output

    def test_bounding_inserts_relays_in_long_blocks(self):
        # A single basic block longer than the max distance forces relays.
        lines = "\n".join(f"acc = acc + {i};" for i in range(80))
        source = f"""
        int g_seed;
        int main() {{
            int keep = g_seed + 77;
            int acc = g_seed;
            {lines}
            __out(acc + keep);
            return 0;
        }}
        """
        result = compile_to_straight(
            compile_source(source), max_distance=31, redundancy_elimination=False
        )
        relays = sum(s["bounding_relays"] for s in result.stats.values())
        # `keep` must be relayed through the 80-add block.
        assert relays > 0
        program = result.link()
        interp = StraightInterpreter(program)
        interp.run(10_000)
        assert interp.output == [sum(range(80)) + 77]  # g_seed is 0


class TestCallingConvention:
    def test_args_arrive_at_fixed_distances(self):
        # A callee reading all args in order exercises the Fig. 5 layout.
        source = """
        int pick(int a, int b, int c, int d) { return a * 1000 + b * 100 + c * 10 + d; }
        int main() { __out(pick(1, 2, 3, 4)); __out(pick(4, 3, 2, 1)); return 0; }
        """
        result = build(source)
        assert run_functional(result.straight_re).output == [1234, 4321]

    def test_return_value_distance(self):
        source = """
        int seven() { return 7; }
        int main() { __out(seven() + 1); return 0; }
        """
        result = build(source)
        assert run_functional(result.straight_raw).output == [8]

    def test_call_in_loop_reloads_state(self):
        result = build(LOOP_WITH_CALL)
        expected = run_functional(result.riscv).output
        assert run_functional(result.straight_raw).output == expected
        assert run_functional(result.straight_re).output == expected

    def test_void_function_call(self):
        source = """
        int g;
        void poke(int v) { g = v; }
        int main() { poke(42); __out(g); return 0; }
        """
        result = build(source)
        assert run_functional(result.straight_re).output == [42]

    def test_spadd_balance(self):
        """Every execution must leave SP back at STACK_TOP (frames pop)."""
        from repro.common.layout import STACK_TOP

        result = build(LOOP_WITH_CALL)
        interp = result.straight_re.interpreter()
        interp.run(100_000)
        assert interp.sp == STACK_TOP


class TestDeterminism:
    def test_compilation_is_reproducible(self):
        first = build(LOOP_WITH_CALL).straight_re.compilation.asm_text()
        second = build(LOOP_WITH_CALL).straight_re.compilation.asm_text()
        assert first == second
