"""Cycle-exactness golden snapshots for the timing engine.

The fixture ``tests/fixtures/golden_simstats.json`` was generated from the
*seed* monolithic engine (pre stage/scheduler refactor) by running::

    PYTHONPATH=src python -m tests.test_golden_snapshots

Every (config, workload) cell records the full ``SimStats.as_dict()`` of a
cold-cache timing run.  The test compares the current engine's output
field-by-field, so any timing drift — a stall counted on a different cycle,
an event fired early, a skipped cycle that was not actually idle — fails
loudly and names the exact counter that moved.

Two deliberately different workloads are pinned:

* ``branchy_div`` — data-dependent branches feeding a division chain: heavy
  misprediction recovery plus long-latency completion events (the idle-skip
  scheduler's best case, and the easiest place to break recovery timing);
* ``mem_stride`` — strided array sweeps: cache misses, prefetch, LSQ
  forwarding and memory-dependence machinery.
"""

import json
import os

from repro.core.api import build, simulate
from repro.core.configs import ss_2way, ss_4way, straight_4way

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures",
                       "golden_simstats.json")

BRANCHY_DIV = """
int main() {
    int lcg = 12345;
    int acc = 7;
    for (int i = 0; i < 300; i++) {
        lcg = lcg * 1103515245 + 12345;
        if ((lcg >> 16) & 1) acc += lcg / (i + 3);   // div chain, taken path
        else acc = acc / 3 + i;                      // div chain, other path
    }
    __out(acc);
    return 0;
}
"""

MEM_STRIDE = """
int a[256]; int b[256];
int main() {
    for (int i = 0; i < 256; i++) { a[i] = i * 3; b[i] = i ^ 5; }
    int s = 0;
    for (int r = 0; r < 4; r++) {
        for (int i = 0; i < 256; i += 4) { s += a[i] + b[255 - i]; }
        for (int i = 0; i < 256; i++) { a[i] = a[i] + b[i]; }
    }
    __out(s);
    return 0;
}
"""

WORKLOADS = {
    "branchy_div": BRANCHY_DIV,
    "mem_stride": MEM_STRIDE,
}

#: (fixture key, config factory, binary label) — the three Table-I shapes the
#: issue pins: a narrow SS, a wide SS, and a wide STRAIGHT.
CONFIGS = (
    ("SS-2way", ss_2way, "SS"),
    ("SS-4way", ss_4way, "SS"),
    ("STRAIGHT-4way", straight_4way, "STRAIGHT-RE+"),
)


def _snapshot(workload_source, factory, label):
    binaries = build(workload_source)
    result = simulate(binaries.all()[label], factory())
    return result.stats.as_dict()


def generate():
    """Regenerate the fixture from the current engine (maintainers only)."""
    payload = {}
    for wl_name, source in sorted(WORKLOADS.items()):
        for cfg_name, factory, label in CONFIGS:
            payload[f"{cfg_name}/{wl_name}"] = _snapshot(source, factory, label)
    os.makedirs(os.path.dirname(FIXTURE), exist_ok=True)
    with open(FIXTURE, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return payload


def _load_fixture():
    with open(FIXTURE) as handle:
        return json.load(handle)


def _flatten(stats_dict):
    """One flat {field: value} map; cache sub-dict becomes dotted keys."""
    flat = {}
    for key, value in stats_dict.items():
        if isinstance(value, dict):
            for sub, subvalue in value.items():
                flat[f"{key}.{sub}"] = subvalue
        else:
            flat[key] = value
    return flat


class TestGoldenSnapshots:
    def test_fixture_exists_and_covers_all_cells(self):
        golden = _load_fixture()
        expected = {f"{cfg}/{wl}" for wl in WORKLOADS
                    for cfg, _, _ in CONFIGS}
        assert set(golden) == expected

    def test_cycle_exact_against_seed_engine(self):
        """Field-by-field comparison of every (config, workload) cell."""
        golden = _load_fixture()
        drift = []
        for wl_name, source in sorted(WORKLOADS.items()):
            for cfg_name, factory, label in CONFIGS:
                cell = f"{cfg_name}/{wl_name}"
                observed = _flatten(_snapshot(source, factory, label))
                for field, want in sorted(_flatten(golden[cell]).items()):
                    got = observed.get(field)
                    if got != want:
                        drift.append(f"{cell}: {field} {want!r} -> {got!r}")
        assert not drift, "timing drift vs seed engine:\n" + "\n".join(drift)


if __name__ == "__main__":
    cells = generate()
    for name in sorted(cells):
        stats = cells[name]
        print(f"{name}: cycles={stats['cycles']} instrs={stats['instructions']}"
              f" ipc={stats['ipc']:.3f}")
