"""Chaos campaign tests: fault injection units + the campaign itself.

The campaign is the acceptance gate for the fault-tolerant execution
layer: every scenario injects a specific failure and asserts the recovery
the robustness contract promises.  CI runs the full campaign; here we run
it in-process and also unit-test the injection primitives.
"""

import os
import signal

import pytest

from repro.common.errors import SimulationError
from repro.harness import chaos
from repro.harness.chaos import (
    COVERAGE_GATE,
    QUICK_SCENARIOS,
    SCENARIOS,
    ChaosReport,
    corrupt_file,
    inject_fault,
    run_chaos_campaign,
)


class TestInjectFault:
    def test_raise_transient(self):
        with pytest.raises(OSError):
            inject_fault({"mode": "raise-transient"})

    def test_raise_deterministic(self):
        with pytest.raises(SimulationError):
            inject_fault({"mode": "raise-deterministic"})

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            inject_fault({"mode": "set-fire-to-the-rain"})

    def test_once_flag_fires_exactly_once(self, tmp_path):
        flag = str(tmp_path / "once.flag")
        with pytest.raises(OSError):
            inject_fault({"mode": "raise-transient", "once": flag})
        # Second and later claims are silent no-ops.
        inject_fault({"mode": "raise-transient", "once": flag})
        inject_fault({"mode": "raise-transient", "once": flag})
        assert os.path.exists(flag)

    def test_kill_refuses_in_main_process(self):
        # The guard is what keeps a broken-pool inline re-run from
        # SIGKILLing the supervisor itself.  If it were broken, this test
        # process would die here.
        inject_fault({"mode": "kill"})

    def test_sleep_mode_sleeps(self, monkeypatch):
        napped = []
        monkeypatch.setattr(chaos.time, "sleep", napped.append)
        inject_fault({"mode": "sleep", "seconds": 2.5})
        assert napped == [2.5]


class TestCorruptFile:
    def make_victim(self, tmp_path, payload=b"x" * 64):
        path = str(tmp_path / "victim.bin")
        with open(path, "wb") as handle:
            handle.write(payload)
        return path

    def test_bitflip_changes_exactly_one_bit(self, tmp_path):
        import random

        original = bytes(range(64))
        path = self.make_victim(tmp_path, original)
        mode = corrupt_file(path, random.Random(7), mode="bitflip")
        assert mode == "bitflip"
        mutated = open(path, "rb").read()
        assert len(mutated) == len(original)
        diff = [a ^ b for a, b in zip(original, mutated) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_truncate_shrinks(self, tmp_path):
        import random

        path = self.make_victim(tmp_path)
        corrupt_file(path, random.Random(7), mode="truncate")
        assert 0 < os.path.getsize(path) < 64

    def test_garbage_replaces(self, tmp_path):
        import random

        path = self.make_victim(tmp_path)
        corrupt_file(path, random.Random(7), mode="garbage")
        assert open(path, "rb").read() != b"x" * 64


class TestRegistry:
    def test_required_failure_classes_covered(self):
        # ISSUE 6 names these fault classes for the campaign; the registry
        # must keep a scenario for each.
        for required in ("worker-kill", "deadline-expiry", "cache-corruption",
                         "interrupt-resume", "transient-retry",
                         "deterministic-quarantine"):
            assert required in SCENARIOS

    def test_quick_subset_is_registered(self):
        assert set(QUICK_SCENARIOS) <= set(SCENARIOS)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError):
            run_chaos_campaign(scenarios=["no-such-scenario"])

    def test_gate_is_at_least_ninety_percent(self):
        assert COVERAGE_GATE >= 0.9


class TestChaosReport:
    def report(self, verdicts):
        scenarios = [{"name": f"s{i}", "ok": ok, "wall_s": 0.0, "detail": {}}
                     for i, ok in enumerate(verdicts)]
        return ChaosReport(1, scenarios, None)

    def test_coverage_fraction(self):
        assert self.report([True, True, False, True]).coverage == 0.75

    def test_gate(self):
        assert self.report([True] * 10).ok
        assert not self.report([True] * 8 + [False] * 2).ok
        assert not self.report([]).ok

    def test_text_flags_failures(self):
        text = self.report([True, False]).text()
        assert "FAIL" in text and "1/2" in text


class TestCampaign:
    def test_quick_campaign_recovers(self, tmp_path):
        """The CI smoke subset: worker kill, cache corruption, resume."""
        report = run_chaos_campaign(seed=20260808,
                                    scenarios=list(QUICK_SCENARIOS),
                                    jobs=2, workdir=str(tmp_path / "chaos"),
                                    keep_workdir=True)
        failures = [s for s in report.scenarios if not s["ok"]]
        assert not failures, report.text()
        assert report.ok and report.coverage == 1.0
        # keep_workdir + explicit workdir: artifacts stay for upload.
        assert os.path.isdir(str(tmp_path / "chaos" / "worker-kill"))

    def test_scenario_crash_counts_as_failure(self, tmp_path, monkeypatch):
        def boom(ctx):
            raise RuntimeError("scenario itself crashed")

        monkeypatch.setitem(SCENARIOS, "worker-kill", boom)
        report = run_chaos_campaign(seed=1, scenarios=["worker-kill"],
                                    workdir=str(tmp_path / "w"))
        assert not report.ok
        assert "RuntimeError" in report.scenarios[0]["detail"]["exception"]

    def test_workdir_cleaned_up_by_default(self, monkeypatch, tmp_path):
        created = {}
        real_mkdtemp = chaos.tempfile.mkdtemp

        def tracking_mkdtemp(**kwargs):
            created["path"] = real_mkdtemp(dir=str(tmp_path), **kwargs)
            return created["path"]

        monkeypatch.setattr(chaos.tempfile, "mkdtemp", tracking_mkdtemp)
        report = run_chaos_campaign(seed=2,
                                    scenarios=["deterministic-quarantine"])
        assert report.ok
        assert not os.path.exists(created["path"])
        assert report.workdir is None


def test_kill_guard_signal_still_importable():
    # chaos imports signal for SIGKILL; a refactor dropping it would make
    # the kill scenario silently no-op on the happy path.
    assert hasattr(signal, "SIGKILL")
