"""White-box tests for the STRAIGHT backend's distance machinery.

These verify the invariants the dynamic ISS check relies on, at the level
of the machine IR: refresh-sequence parallel-copy semantics, entry-age
algebra, call-site age invalidation, and the convention's fixed distances.
"""

import pytest

from repro.common.errors import CompileError
from repro.frontend import compile_source
from repro.compiler.straight_backend.driver import compile_to_straight
from repro.compiler.straight_backend.machine_ir import (
    MInst,
    MFunction,
    MBlock,
    ZERO,
    ArgValue,
    RetAddrValue,
)
from repro.core.api import build, run_functional


def compiled_unit(source, func_name, **kwargs):
    module = compile_source(source)
    compilation = compile_to_straight(module, **kwargs)
    for unit in compilation.units:
        labels = [item for kind, item in unit.items if kind == "label"]
        if labels and labels[0] == func_name:
            return unit, compilation
    raise AssertionError(f"no unit for {func_name}")


class TestConventionDistances:
    def test_leaf_arg_distances(self):
        """In `int f(a, b)`, the first use of b is closer than a
        (Fig. 5: argN-1 sits immediately before the JAL)."""
        source = """
        int f(int a, int b) { return a - b; }
        int main() { __out(f(10, 4)); return 0; }
        """
        unit, _ = compiled_unit(source, "f")
        sub = [i for i in unit.instructions() if i.mnemonic == "SUB"][0]
        dist_a, dist_b = sub.srcs
        assert dist_b < dist_a

    def test_retaddr_distance_in_trivial_leaf(self):
        """`int f() { return 0; }` compiles to [retval producer, JR]; the
        JR's distance to the caller's JAL is exactly 2."""
        source = """
        int f() { return 0; }
        int main() { __out(f()); return 0; }
        """
        unit, _ = compiled_unit(source, "f")
        instrs = unit.instructions()
        assert [i.mnemonic for i in instrs] == ["ADDI", "JR"]
        assert instrs[1].srcs == (2,)  # JAL at distance 2 (through the ADDI)

    def test_caller_reads_retval_at_distance_two_or_more(self):
        source = """
        int f() { return 21; }
        int main() { __out(f() * 2); return 0; }
        """
        unit, _ = compiled_unit(source, "main")
        instrs = unit.instructions()
        jal_index = next(
            i for i, instr in enumerate(instrs) if instr.mnemonic == "JAL"
        )
        # The return value sits at distance 2 from the resume point (the
        # callee's JR is at 1), growing by 1 per intervening instruction;
        # some instruction shortly after the JAL must reach back across the
        # call boundary (distance >= 2) to consume it.
        window = instrs[jal_index + 1 : jal_index + 4]
        assert any(any(d >= 2 for d in instr.srcs) for instr in window)
        # And the program computes the right answer through that distance.
        assert run_functional(build(source).straight_re).output == [42]


class TestRefreshSemantics:
    def test_swap_loop_refreshes_read_old_values(self):
        """The refresh sequence is a parallel copy: a swap through two phis
        must not read the freshly-refreshed value (the lost-copy bug)."""
        source = """
        int g;
        int main() {
            int a = g + 1; int b = g + 2;
            for (int i = 0; i < 5; i++) { int t = a; a = b; b = t; }
            __out(a * 10 + b);
            return 0;
        }
        """
        result = build(source)
        assert run_functional(result.straight_raw).output == [21]

    def test_three_way_rotation(self):
        source = """
        int g;
        int main() {
            int a = g + 1; int b = g + 2; int c = g + 3;
            for (int i = 0; i < 4; i++) { int t = a; a = b; b = c; c = t; }
            __out(a * 100 + b * 10 + c);
            return 0;
        }
        """
        # rotation by 4 of (1,2,3): each step left-rotates -> after 4: (2,3,1)
        result = build(source)
        assert run_functional(result.straight_raw).output == [231]

    def test_refresh_count_identical_across_preds(self):
        """Every predecessor of a merge must contribute the same number of
        refresh instructions — otherwise entry distances diverge."""
        source = """
        int g;
        int main() {
            int x = g;
            int y = g + 7;
            for (int i = 0; i < 6; i++) {
                if (i % 2 == 0) x += y;
                else x -= 1;
            }
            __out(x);
            return 0;
        }
        """
        module = compile_source(source)
        compilation = compile_to_straight(module, redundancy_elimination=False)
        # Dynamic check is definitive: the ISS validates all distances.
        from repro.straight import StraightInterpreter

        interp = StraightInterpreter(compilation.link())
        interp.run(10_000)
        assert interp.output  # completed without distance violations


class TestCallSiteInvalidation:
    def test_value_use_after_call_goes_through_frame(self):
        """No register distance may span a call; the compiler must reload."""
        source = """
        int g;
        int id(int x) { return x; }
        int main() {
            int keep = g + 1234;    // not constant-foldable
            int other = id(5);
            __out(keep + other);   // keep crosses the call
            return 0;
        }
        """
        unit, compilation = compiled_unit(source, "main")
        assert run_functional(build(source).straight_raw).output == [1239]
        # main must have a frame (keep + retaddr spilled).
        assert compilation.stats["main"]["frame_words"] >= 2

    def test_walker_rejects_unaged_operand(self):
        """A hand-built MFunction using a value after a call must be caught
        by the distance walker, not silently misencoded."""
        from repro.compiler.straight_backend.distance import DistanceWalker

        mfunc = MFunction("bad", 0, False)
        block = mfunc.add_block("bad")
        value = block.append(MInst("ADDI", [ZERO], imm=1))
        jal = block.append(MInst("JAL", target="callee"))
        jal.retval_value = None
        block.append(MInst("OUT", [value]))  # stale: ages died at the JAL
        block.append(MInst("HALT"))
        mfunc.compute_preds()

        class _Frame:
            retaddr_spilled = False
            spilled = set()

        walker = DistanceWalker(mfunc, None, None, _Frame(), {}, 1023)
        walker.rc_live_in = {block: set()}
        with pytest.raises(CompileError, match="no age"):
            walker.run()


class TestMachineIr:
    def test_minst_is_its_own_value(self):
        inst = MInst("ADD", [ZERO, ZERO])
        assert inst.uid >= 0
        assert not inst.is_terminator()
        assert inst.is_pure_alu()

    def test_terminator_classification(self):
        for op in ("J", "JR", "BEZ", "BNZ", "HALT"):
            assert MInst(op).is_terminator(), op
        for op in ("ADD", "LD", "ST", "JAL", "SPADD", "OUT"):
            assert not MInst(op).is_terminator(), op

    def test_store_and_load_not_sinkable(self):
        assert not MInst("ST", [ZERO, ZERO], imm=0).is_pure_alu()
        assert not MInst("LD", [ZERO], imm=0).is_pure_alu()
        assert not MInst("SPADD", imm=0).is_pure_alu()

    def test_block_successors(self):
        mfunc = MFunction("f", 0, False)
        b1 = mfunc.add_block("b1")
        b2 = mfunc.add_block("b2")
        b3 = mfunc.add_block("b3")
        b1.append(MInst("BNZ", [ZERO], target=b2))
        b1.append(MInst("J", target=b3))
        b2.append(MInst("HALT"))
        b3.append(MInst("HALT"))
        mfunc.compute_preds()
        assert b1.successors() == [b2, b3]
        assert b2.preds == [b1]
        assert not b2.is_merge

    def test_uid_ordering_deterministic(self):
        values = [ArgValue(0), RetAddrValue(), MInst("NOP")]
        uids = [v.uid for v in values]
        assert uids == sorted(uids)
