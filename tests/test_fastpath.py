"""Threaded-code fast path: bit-identical execution, plumbing, warming.

The compiled interpreter (:mod:`repro.fastpath`) must be a pure speed
transformation: same outputs, same step counts, same architectural state,
same bookkeeping dicts, for every registered ISA.  These tests pin that
contract, plus the control-descriptor table and the functional-warming
parity the sampled simulator depends on.
"""

import pytest

from repro import fastpath
from repro import isa as isa_registry
from repro.core.api import build, run_functional
from repro.core.configs import ss_2way, straight_2way
from repro.harness.sampling import SampledRunner, SamplingParams, _PredictorWarmer
from repro.uarch.core import OoOCore

#: Branchy program: calls, returns, loops, a divide (uncompiled fallback op),
#: and data-dependent branches so the predictor warming paths get exercised.
SOURCE = """
int tab[16];

int mix(int x, int y) {
    if (x > y) return x - y;
    return y - x + 1;
}

int collatz(int n) {
    int steps = 0;
    while (n != 1 && steps < 60) {
        if (n % 2 == 0) n = n / 2;
        else n = 3 * n + 1;
        steps++;
    }
    return steps;
}

int main() {
    int acc = 0;
    for (int i = 0; i < 16; i++) { tab[i] = i * 13 % 7 + i; }
    for (int i = 0; i < 16; i++) {
        acc += mix(tab[i], tab[15 - i]);
        if (acc % 3 == 0) acc += collatz(i + 5);
    }
    __out(acc);
    __out(collatz(27));
    __out(tab[3] + tab[11]);
    return 0;
}
"""


@pytest.fixture(scope="module")
def binaries():
    return build(SOURCE).all()


def _run_pair(binary, **kw):
    base = run_functional(binary, compiled=False, **kw)
    fast = run_functional(binary, compiled=True, **kw)
    return base, fast


class TestBitIdentity:
    def test_outputs_and_steps_match_per_isa(self, binaries):
        for label, binary in binaries.items():
            base, fast = _run_pair(binary)
            assert fast.output == base.output, label
            assert fast.run_result.steps == base.run_result.steps, label

    def test_architectural_state_matches_per_isa(self, binaries):
        for label, binary in binaries.items():
            base = binary.interpreter(compiled=False)
            fast = binary.interpreter(compiled=True)
            base.run(2_000_000)
            fast.run(2_000_000)
            assert fast.checkpoint() == base.checkpoint(), label

    def test_bookkeeping_dicts_match_iteration_order(self, binaries):
        # The per-block batched bumps must replay first-occurrence order.
        for label, binary in binaries.items():
            base = binary.interpreter(compiled=False)
            fast = binary.interpreter(compiled=True)
            base.run(2_000_000)
            fast.run(2_000_000)
            assert (list(fast.mnemonic_counts.items())
                    == list(base.mnemonic_counts.items())), label
            if hasattr(base, "distance_hist"):
                assert (list(fast.distance_hist.items())
                        == list(base.distance_hist.items())), label

    def test_trace_collection_identical(self, binaries):
        for label, binary in binaries.items():
            base = binary.interpreter(collect_trace=True, compiled=False)
            fast = binary.interpreter(collect_trace=True, compiled=True)
            base.run(2_000_000)
            fast.run(2_000_000)
            assert len(fast.trace) == len(base.trace), label
            fields = type(base.trace[0]).__slots__
            for a, b in zip(base.trace, fast.trace):
                assert ([getattr(a, f) for f in fields]
                        == [getattr(b, f) for f in fields]), label

    @pytest.mark.parametrize("max_steps", [1, 7, 97, 450])
    def test_max_steps_lands_exactly(self, binaries, max_steps):
        # Partial runs must stop on the same instruction (mid-block included).
        for label, binary in binaries.items():
            base = binary.interpreter(compiled=False)
            fast = binary.interpreter(compiled=True)
            rb = base.run(max_steps=max_steps)
            rf = fast.run(max_steps=max_steps)
            assert rf.steps == rb.steps, label
            assert fast.checkpoint() == base.checkpoint(), (label, max_steps)


class TestPlumbing:
    def test_compiled_flag_forces_fast_path(self, binaries):
        for label, binary in binaries.items():
            assert binary.interpreter(compiled=True)._fast is not None, label
            assert binary.interpreter(compiled=False)._fast is None, label

    def test_env_kill_switch(self, binaries, monkeypatch):
        monkeypatch.setenv("STRAIGHT_FASTPATH", "0")
        assert not fastpath.enabled()
        binary = binaries["STRAIGHT-RE+"]
        assert binary.interpreter()._fast is None
        # The per-instance override still wins over the environment.
        assert binary.interpreter(compiled=True)._fast is not None

    def test_compile_is_memoized_per_program(self, binaries):
        for label, binary in binaries.items():
            first = fastpath.compiled_for(binary.program, binary.isa)
            assert fastpath.compiled_for(binary.program, binary.isa) is first

    def test_every_registered_isa_compiles(self, binaries):
        labels = {d.default_label for d in isa_registry.descriptors()}
        assert labels <= set(binaries)
        for label in labels:
            assert binaries[label].interpreter(compiled=True)._fast is not None


class TestControlDescriptors:
    def test_term_at_marks_exactly_the_control_ops(self, binaries):
        for label, binary in binaries.items():
            interp = binary.interpreter(compiled=True)
            decoded = interp.decoded
            term_at = interp._fast.term_at
            assert len(term_at) == len(decoded), label
            for op in decoded:
                term = term_at[op.index]
                if op.op_class in ("branch", "jump"):
                    pc, is_cond, is_call, is_return, fallthrough = term
                    assert pc == op.pc, label
                    assert is_cond == (op.op_class == "branch"), label
                    assert fallthrough == op.index + 1, label
                    assert not (is_call and is_return), label
                else:
                    assert term is None, (label, op.index)


def _predictor_state(core):
    """Comparable snapshot of everything functional warming mutates."""
    skip = ("stats",)
    return {
        unit: {k: v for k, v in vars(getattr(core, unit)).items()
               if k not in skip}
        for unit in ("predictor", "btb", "ras")
    }


class TestWarmingParity:
    @pytest.mark.parametrize("label,config_factory", [
        ("SS", ss_2way), ("STRAIGHT-RE+", straight_2way),
    ])
    def test_compiled_and_trace_warming_agree(self, binaries, label,
                                              config_factory):
        # _fast_forward has two implementations: term_at callbacks on the
        # compiled path, trace replay on the baseline path.  Same execution
        # must leave bit-identical predictor / BTB / RAS state.
        binary = binaries[label]
        config = config_factory()
        states = []
        for compiled in (True, False):
            interp = binary.interpreter(compiled=compiled)
            core = OoOCore(config)
            warmer = _PredictorWarmer(core, binary.program.text_base)
            runner = SampledRunner(binary, config, SamplingParams())
            steps = runner._fast_forward(interp, 1500, warmer)
            assert steps == 1500
            states.append(_predictor_state(core))
        assert states[0] == states[1]
