"""Event-driven engine tests: scheduler, cycle skipping, bounded bookkeeping.

The cycle-exactness of the stage-decomposed engine against the seed is
pinned by ``tests/test_golden_snapshots.py``; this file covers the new
machinery itself: the :class:`~repro.uarch.scheduler.EventScheduler`'s
deduplication and jump semantics, the idle-skip invariant (identical stats
with and without skipping, with a nonzero skip count on stall-heavy code),
the commit-time pruning of per-seq bookkeeping, and the
:class:`~repro.uarch.stats.StatsRegistry` contribution rules.
"""

import pytest

from repro.common.errors import SimulationError
from repro.core.api import build
from repro.core.configs import ss_2way, straight_2way
from repro.guardrails.suite import GuardrailSuite, InvariantChecker
from repro.uarch.core import OoOCore, SimStats, default_registry
from repro.uarch.scheduler import EventScheduler
from repro.uarch.stats import StatsRegistry

# Deep serial division chain feeding data-dependent branches: mispredicts
# park fetch behind long-latency resolution, so the machine has long
# provably-idle windows — the cycle skipper's best case.
STALL_HEAVY = """
int main() {
    int acc = 999999999;
    int lcg = 12345;
    for (int i = 0; i < 120; i++) {
        lcg = lcg * 1103515245 + 12345;
        int t = acc / (i + 2);
        t = t / 3 + 7;
        t = t / 2 + 5;
        t = t / 3 + 9;
        t = t / 2 + 11;
        if ((t ^ lcg) & 1) acc = 999999999 - (lcg & 255);
        else acc = 900000000 + (lcg & 1023);
    }
    __out(acc);
    return 0;
}
"""


def _trace(source, label="SS"):
    binaries = build(source)
    binary = binaries.all()[label]
    interp = binary.interpreter(collect_trace=True)
    interp.run(50_000_000)
    return interp.trace


class TestEventScheduler:
    def test_schedule_deduplicates_same_cycle(self):
        sched = EventScheduler()
        sched.schedule(7)
        sched.schedule(7)
        sched.schedule(7)
        sched.schedule(9)
        assert sched.pending() == 2
        assert sched.next_event() == 7

    def test_next_event_drops_stale_entries(self):
        sched = EventScheduler()
        sched.schedule(3)
        sched.schedule(5)
        sched.cycle = 4
        assert sched.next_event() == 5
        assert sched.pending() == 1  # the stale entry at 3 is gone

    def test_next_event_empty_returns_none(self):
        assert EventScheduler().next_event() is None

    def test_jump_counts_skipped_cycles(self):
        sched = EventScheduler()
        sched.advance()
        sched.jump(11)
        assert sched.cycle == 11
        assert sched.executed_cycles == 1
        assert sched.skipped_cycles == 10

    def test_jump_must_move_forward(self):
        sched = EventScheduler()
        sched.jump(4)
        with pytest.raises(ValueError):
            sched.jump(4)
        with pytest.raises(ValueError):
            sched.jump(2)

    def test_rescheduling_after_pop_is_allowed(self):
        sched = EventScheduler()
        sched.schedule(5)
        sched.cycle = 6
        assert sched.next_event() is None
        sched.schedule(8)
        assert sched.next_event() == 8


class TestCycleSkipping:
    def test_skip_and_step_produce_identical_stats(self):
        trace = _trace(STALL_HEAVY)
        stepped = OoOCore(ss_2way()).run(trace, idle_skip=False)
        core = OoOCore(ss_2way())
        event_driven = core.run(trace, idle_skip=True)
        assert stepped.as_dict() == event_driven.as_dict()
        assert core.engine.sched.skipped_cycles > 0

    def test_executed_plus_skipped_equals_cycles(self):
        trace = _trace(STALL_HEAVY)
        core = OoOCore(ss_2way())
        stats = core.run(trace, idle_skip=True)
        sched = core.engine.sched
        assert sched.executed_cycles + sched.skipped_cycles == stats.cycles

    def test_guardrails_disable_skipping(self):
        trace = _trace(STALL_HEAVY)
        suite = GuardrailSuite(ss_2way())
        core = OoOCore(ss_2way(), guardrails=suite)
        stats = core.run(trace)
        assert core.engine.sched.skipped_cycles == 0
        assert core.engine.sched.executed_cycles == stats.cycles

    def test_max_cycles_exceeded_parity(self):
        """Both modes raise at the same cycle with the same occupancy."""
        trace = _trace(STALL_HEAVY)
        payloads = []
        for idle_skip in (False, True):
            core = OoOCore(ss_2way())
            with pytest.raises(SimulationError) as excinfo:
                core.run(trace, max_cycles=500, idle_skip=idle_skip)
            payloads.append((excinfo.value.cycle, str(excinfo.value)))
        assert payloads[0] == payloads[1]
        assert payloads[0][0] == 501


class _BookkeepingProbe(InvariantChecker):
    """Records the high-water marks of the per-seq bookkeeping dicts."""

    name = "bookkeeping-probe"

    def __init__(self):
        self.max_reg_ready = 0
        self.max_iq_entries = 0

    def on_cycle(self, view):
        state = view.core.engine.state
        self.max_reg_ready = max(self.max_reg_ready, len(view.reg_ready))
        self.max_iq_entries = max(self.max_iq_entries,
                                  len(state.iq_entries_by_seq))


class TestCommitPruning:
    def test_bookkeeping_empty_after_run(self):
        trace = _trace(STALL_HEAVY)
        core = OoOCore(ss_2way())
        core.run(trace)
        state = core.engine.state
        assert state.reg_ready == {}
        assert state.iq_entries_by_seq == {}
        assert state.waiting == {}
        assert state.rob_by_seq == {}

    def test_bookkeeping_bounded_by_rob_during_run(self):
        """Pruned-at-commit dicts never exceed the in-flight window."""
        probe = _BookkeepingProbe()
        config = ss_2way()
        suite = GuardrailSuite(config, checkers=[probe])
        core = OoOCore(config, guardrails=suite)
        trace = _trace(STALL_HEAVY)
        core.run(trace)
        assert 0 < probe.max_reg_ready <= config.rob_entries
        assert 0 < probe.max_iq_entries <= config.rob_entries
        # Steady-state, not O(trace): far more instructions ran than the
        # dicts ever held.
        assert len(trace) > 4 * probe.max_reg_ready


class TestStatsRegistry:
    def test_default_registry_matches_simstats_fields(self):
        registry = default_registry()
        stats = SimStats()
        assert stats.fields == registry.fields
        assert len(registry) == 36  # 30 engine fields + 6 attribution buckets
        data = stats.as_dict()
        for field in registry.fields:
            assert field in data

    def test_every_field_has_an_owner(self):
        registry = default_registry()
        for field in registry.fields:
            assert registry.owner_of(field) is not None
        assert registry.owner_of("cycles") == "engine"
        assert registry.owner_of("store_forwards") == "lsq"
        assert registry.owner_of("opdet_ops") == "frontend.straight"
        assert "branch_mispredicts" in registry

    def test_duplicate_contribution_rejected(self):
        registry = StatsRegistry()
        registry.contribute("a", ("x", "y"))
        with pytest.raises(ValueError):
            registry.contribute("b", ("y",))

    def test_by_owner_groups_in_contribution_order(self):
        registry = StatsRegistry()
        registry.contribute("a", ("x",))
        registry.contribute("b", ("y", "z"))
        assert registry.by_owner() == {"a": ["x"], "b": ["y", "z"]}


class TestStraightEngineParity:
    def test_straight_config_skip_parity(self):
        """The skip invariant holds for the STRAIGHT front end too."""
        trace = _trace(STALL_HEAVY, label="STRAIGHT-RE+")
        stepped = OoOCore(straight_2way()).run(trace, idle_skip=False)
        core = OoOCore(straight_2way())
        event_driven = core.run(trace, idle_skip=True)
        assert stepped.as_dict() == event_driven.as_dict()
