"""Regenerate sampled_golden.json (run from the repo root).

The fixture pins full-simulation IPC for the sampled-vs-full error-bound
tests in tests/test_sampling.py, so the suite never pays for the full
runs.  Rerun after any intentional timing-model change::

    PYTHONPATH=src python tests/fixtures/regen_sampled_golden.py
"""

import json
import os

from repro.core.api import simulate
from repro.core.configs import ALL_CORES
from repro.workloads import build_workload

CELLS = [("SS", "SS-2way"), ("STRAIGHT-RE+", "STRAIGHT-2way"),
         ("BB", "BB-2way")]
ITERATIONS = 150


def main():
    binaries = build_workload("dhrystone", iterations=ITERATIONS).all()
    cells = []
    for label, core_name in CELLS:
        result = simulate(binaries[label], ALL_CORES[core_name](),
                          warm_caches=True)
        cells.append({
            "binary": label,
            "config": core_name,
            "instructions": result.stats.instructions,
            "cycles": result.stats.cycles,
            "ipc": round(result.stats.instructions / result.stats.cycles, 6),
            "output": result.output,
        })
    fixture = {
        "_comment": (
            "Full-simulation golden results for tests/test_sampling.py: "
            "dhrystone x 150 iterations, warm caches. Regenerate with "
            "tests/fixtures/regen_sampled_golden.py after any timing-model "
            "change (test_golden_snapshots will flag those first)."
        ),
        "workload": "dhrystone",
        "iterations": ITERATIONS,
        "warm_caches": True,
        "cells": cells,
    }
    path = os.path.join(os.path.dirname(__file__), "sampled_golden.json")
    with open(path, "w") as fh:
        json.dump(fixture, fh, indent=1)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
