"""Workload validation, power model, top-level API, and config tests."""

import pytest

from repro.core import build, simulate, run_functional
from repro.core.configs import (
    ss_2way,
    straight_2way,
    ss_4way,
    straight_4way,
    TABLE1,
    table1_rows,
)
from repro.power import analyze_power, EnergyParams
from repro.uarch.core import SimStats
from repro.workloads import WORKLOADS, get_workload, build_workload


class TestWorkloads:
    @pytest.mark.parametrize("name", sorted(WORKLOADS))
    def test_cross_isa_validation(self, name):
        # build_workload raises if the three binaries' outputs diverge.
        result = build_workload(name)
        assert result.riscv.isa == "riscv"
        assert result.straight_re.isa == "straight"

    def test_iterations_scale_work(self):
        wl = get_workload("dhrystone")
        small = run_functional(wl.build(iterations=5).riscv)
        large = run_functional(wl.build(iterations=10).riscv)
        assert large.run_result.steps > small.run_result.steps * 1.5

    def test_coremark_keeps_more_values_alive(self):
        """The paper's explanation for CoreMark's larger RMOV overhead:
        more live values across control flow than Dhrystone (§VI-A)."""
        ratios = {}
        for name in ("dhrystone", "coremark"):
            result = build_workload(name)
            ss = run_functional(result.riscv).run_result.steps
            raw = run_functional(result.straight_raw).run_result.steps
            ratios[name] = raw / ss
        assert ratios["coremark"] > ratios["dhrystone"]

    def test_re_plus_shrinks_code(self):
        result = build_workload("coremark")
        raw = run_functional(result.straight_raw).run_result.steps
        re_plus = run_functional(result.straight_re).run_result.steps
        assert re_plus < raw

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            get_workload("specint")


class TestConfigs:
    def test_table1_matches_paper_headline_numbers(self):
        rows = {r["Model"]: r for r in table1_rows()}
        assert rows["SS-4way"]["ROB Capacity"] == 224
        assert rows["STRAIGHT-4way"]["Register File"] == 256
        assert rows["SS-2way"]["Register File"] == 96
        assert rows["STRAIGHT-2way"]["LSQ"] == "LD 48 / ST 48"
        assert rows["SS-4way"]["Front-end latency"] == 8
        assert rows["STRAIGHT-4way"]["Front-end latency"] == 6

    def test_max_rp_equals_register_file(self):
        """MAX_RP = max distance + ROB entries (paper §III-B)."""
        for factory in (straight_2way, straight_4way):
            config = factory()
            assert config.max_distance + config.rob_entries <= config.phys_regs

    def test_copy_overrides(self):
        config = ss_2way(predictor="tage")
        assert config.predictor == "tage"
        assert ss_2way().predictor == "gshare"

    def test_copy_rejects_unknown_field(self):
        with pytest.raises(AttributeError):
            ss_2way(warp_drive=True)

    def test_registry_complete(self):
        assert set(TABLE1) == {
            "SS-2way",
            "STRAIGHT-2way",
            "SS-4way",
            "STRAIGHT-4way",
        }


class TestPowerModel:
    def _fake_stats(self, is_straight):
        stats = SimStats()
        stats.cycles = 1000
        stats.instructions = 1500
        stats.regfile_reads = 2500
        stats.regfile_writes = 1400
        stats.iq_wakeups = 2000
        stats.rob_writes = 1500
        stats.alu_ops = 1200
        if is_straight:
            stats.opdet_ops = 2500
        else:
            stats.rename_src_reads = 4000
            stats.rename_writes = 1400
        return stats

    def test_rename_power_mostly_removed(self):
        ss = analyze_power(self._fake_stats(False), is_straight=False)
        st = analyze_power(self._fake_stats(True), is_straight=True)
        ratio = st.modules["rename"].total / ss.modules["rename"].total
        assert ratio < 0.1  # "the power corresponding register renaming is
        # almost removed in STRAIGHT" (§VI-C)

    def test_power_grows_superlinearly_with_frequency(self):
        stats = self._fake_stats(False)
        p1 = analyze_power(stats, False, rel_frequency=1.0).total()
        p25 = analyze_power(stats, False, rel_frequency=2.5).total()
        p4 = analyze_power(stats, False, rel_frequency=4.0).total()
        assert p25 > 2.5 * p1  # V(f)^2 scaling
        assert p4 > 4.0 * p1

    def test_backend_modules_identical_energy_constants(self):
        """Register file & exec energies are shared hardware; with equal
        event counts the powers must be equal across architectures."""
        ss = analyze_power(self._fake_stats(False), is_straight=False)
        st_stats = self._fake_stats(True)
        st = analyze_power(st_stats, is_straight=True)
        assert st.modules["regfile"].total == ss.modules["regfile"].total

    def test_custom_params(self):
        params = EnergyParams(rmt_read=100.0)
        report = analyze_power(self._fake_stats(False), False, params=params)
        default = analyze_power(self._fake_stats(False), False)
        assert report.modules["rename"].total > default.modules["rename"].total


class TestTopLevelApi:
    def test_build_produces_one_binary_per_registered_label(self, small_build):
        from repro import isa as isa_registry

        labels = set(small_build.all())
        expected = {
            label
            for descriptor in isa_registry.descriptors()
            for label in descriptor.binary_labels
        }
        assert labels == expected == {"SS", "STRAIGHT-RAW", "STRAIGHT-RE+",
                                      "BB"}

    def test_simulate_returns_consistent_result(self, small_build):
        result = simulate(small_build.straight_re, straight_2way())
        assert result.output == [39, 55, 15]
        assert result.cycles == result.stats.cycles
        assert result.ipc == result.stats.ipc

    def test_functional_run_limit_raises(self, small_build):
        from repro.common.errors import SimulationError

        with pytest.raises(SimulationError, match="did not finish"):
            run_functional(small_build.riscv, max_steps=10)

    def test_stats_dict_roundtrip(self, small_build):
        result = simulate(small_build.riscv, ss_2way())
        data = result.stats.as_dict()
        assert data["instructions"] == result.stats.instructions
        assert "ipc" in data and "cache" in data
