"""Tests for the ``repro.serve`` subsystem (PR 10).

Covers the protocol layer (canonicalization identity, SSE framing
round-trip), quotas (deterministic fake clock), the job store's
single-flight contract, subscriber streaming (two subscribers, ordered;
disconnect mid-stream), the executor's in-flight dedup (two concurrent
identical jobs -> one pool task, via a monkeypatched sweep engine), the
HTTP server end to end over a real socket (including the compiler
explorer for every registered ISA), and the thread-safety of the cache
configuration singleton (satellite a).
"""

import asyncio
import threading
import time

import pytest

from repro.harness import cache as cache_mod
from repro.serve import executor as executor_mod
from repro.serve.jobs import Job, JobStore
from repro.serve.protocol import (
    BadRequest,
    canonical_request,
    parse_sse,
    sse_event,
)
from repro.serve.quota import QuotaRegistry, TokenBucket

SRC = "int main() { __out(40 + 2); return 0; }"
SRC_LOOP = """
int main() {
    int acc = 0;
    for (int i = 0; i < 10; ++i) acc += i;
    __out(acc);
    return 0;
}
"""


# ---------------------------------------------------------------------------
# Protocol: canonicalization
# ---------------------------------------------------------------------------


class TestCanonicalRequest:
    def test_key_stable_under_field_order_and_defaults(self):
        _r1, k1 = canonical_request("simulate", {"source": SRC})
        _r2, k2 = canonical_request(
            "simulate", {"max_distance": 1023, "source": SRC,
                         "attribution": False})
        assert k1 == k2

    def test_timeout_excluded_from_identity(self):
        r1, k1 = canonical_request("simulate", {"source": SRC})
        r2, k2 = canonical_request("simulate", {"source": SRC,
                                                "timeout_s": 7})
        assert k1 == k2
        assert r1["timeout_s"] != r2["timeout_s"] == 7.0

    def test_different_source_different_key(self):
        _r1, k1 = canonical_request("simulate", {"source": SRC})
        _r2, k2 = canonical_request("simulate", {"source": SRC_LOOP})
        assert k1 != k2

    def test_sweep_experiments_order_insensitive(self):
        from repro.harness.experiments import ALL_EXPERIMENTS

        names = sorted(ALL_EXPERIMENTS)[:2]
        _r1, k1 = canonical_request("sweep", {"experiments": names})
        _r2, k2 = canonical_request("sweep",
                                    {"experiments": list(reversed(names))})
        assert k1 == k2

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequest, match="unknown simulate field"):
            canonical_request("simulate", {"source": SRC, "bogus": 1})

    def test_unknown_core_rejected(self):
        with pytest.raises(BadRequest, match="unknown core"):
            canonical_request("simulate", {"source": SRC,
                                           "core": "Pentium-III"})

    def test_source_xor_workload(self):
        with pytest.raises(BadRequest, match="exactly one"):
            canonical_request("simulate", {"source": SRC,
                                           "workload": "dhrystone"})
        with pytest.raises(BadRequest, match="exactly one"):
            canonical_request("simulate", {})

    def test_attribution_and_sampling_conflict(self):
        with pytest.raises(BadRequest, match="cannot be combined"):
            canonical_request("simulate", {
                "source": SRC, "core": "STRAIGHT-2way",
                "attribution": True, "sampling": {"period": 8000},
            })

    def test_inconsistent_sampling_schedule_is_bad_request(self):
        with pytest.raises(BadRequest, match="sampling"):
            canonical_request("simulate", {
                "source": SRC, "core": "STRAIGHT-2way",
                "sampling": {"period": 10, "window": 100},
            })

    def test_unknown_kind_rejected(self):
        with pytest.raises(BadRequest, match="unknown job kind"):
            canonical_request("fuzz", {})


# ---------------------------------------------------------------------------
# Protocol: SSE framing
# ---------------------------------------------------------------------------


class TestSseFraming:
    def test_round_trip_json_payload(self):
        frame = sse_event({"b": 2, "a": 1}, event="progress", id=3)
        events = parse_sse(frame)
        assert events == [{"id": "3", "event": "progress",
                           "data": '{"a":1,"b":2}'}]

    def test_multi_line_data_round_trips(self):
        frame = sse_event("line one\nline two\n\nline four", event="asm")
        (event,) = parse_sse(frame)
        assert event["data"] == "line one\nline two\n\nline four"

    def test_stream_of_frames_stays_ordered(self):
        blob = b"".join(sse_event({"i": i}, event="e", id=i)
                        for i in range(5))
        events = parse_sse(blob)
        assert [e["id"] for e in events] == ["0", "1", "2", "3", "4"]

    def test_comment_keepalives_skipped(self):
        text = ": keep-alive\n\n" + sse_event("x", event="e").decode()
        events = parse_sse(text)
        assert len(events) == 1 and events[0]["data"] == "x"


# ---------------------------------------------------------------------------
# Quotas
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(1.0)
        now[0] += 1.0
        assert bucket.try_take()
        assert bucket.rejections == 1 and bucket.granted == 3

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=lambda: now[0])
        now[0] += 60.0
        for _ in range(3):
            assert bucket.try_take()
        assert not bucket.try_take()

    def test_registry_lru_bound(self):
        registry = QuotaRegistry(rate=1.0, burst=1.0, max_clients=2,
                                 clock=lambda: 0.0)
        for client in ("a", "b", "c"):
            registry.try_take(client)
        assert registry.stats()["clients"] == 2

    def test_disabled_registry_grants_everything(self):
        registry = QuotaRegistry(rate=None)
        for _ in range(1000):
            granted, retry_after = registry.try_take("anyone")
            assert granted and retry_after == 0.0

    def test_rejections_counted_with_retry_after(self):
        registry = QuotaRegistry(rate=1.0, burst=1.0, clock=lambda: 0.0)
        assert registry.try_take("c")[0]
        granted, retry_after = registry.try_take("c")
        assert not granted and retry_after > 0
        assert registry.stats()["rejections"] == 1


# ---------------------------------------------------------------------------
# Job store: single-flight contract + streaming
# ---------------------------------------------------------------------------


class TestJobStore:
    def test_single_flight_and_store_serving(self):
        async def scenario():
            store = JobStore()
            job1, created1, served1 = store.submit("simulate",
                                                   {"source": SRC})
            assert created1 and served1 == "fresh"
            job2, created2, served2 = store.submit("simulate",
                                                   {"source": SRC})
            assert job2 is job1 and not created2 and served2 == "inflight"
            job1.mark_running()
            job1.finish({"ok": True})
            job3, created3, served3 = store.submit("simulate",
                                                   {"source": SRC})
            assert job3 is job1 and not created3 and served3 == "store"
            assert store.counters["dedup_inflight"] == 1
            assert store.counters["dedup_store"] == 1

        asyncio.run(scenario())

    def test_failed_jobs_are_not_dedup_targets(self):
        async def scenario():
            store = JobStore()
            job1, _created, _served = store.submit("simulate",
                                                   {"source": SRC})
            job1.mark_running()
            job1.fail("SimulationError", "boom")
            job2, created2, served2 = store.submit("simulate",
                                                   {"source": SRC})
            assert job2 is not job1 and created2 and served2 == "fresh"

        asyncio.run(scenario())

    def test_eviction_keeps_live_jobs(self):
        async def scenario():
            store = JobStore(max_jobs=2)
            done1, _c, _s = store.submit("simulate", {"source": SRC})
            done1.mark_running()
            done1.finish({})
            live, _c, _s = store.submit("simulate", {"source": SRC_LOOP})
            third, _c, _s = store.submit("compile", {"source": SRC})
            assert done1.id not in store.jobs      # oldest terminal evicted
            assert live.id in store.jobs           # queued: never evicted
            assert third.id in store.jobs
            assert store.by_key.get(done1.key) is None

        asyncio.run(scenario())

    def test_two_subscribers_get_identical_ordered_streams(self):
        async def scenario():
            job = Job("j1", "simulate", "k" * 64, {})

            async def consume():
                return [(r["index"], r["event"]) async for r in job.stream()]

            first = asyncio.ensure_future(consume())
            second = asyncio.ensure_future(consume())
            await asyncio.sleep(0)
            job.mark_running()
            await asyncio.sleep(0)
            job.publish("progress", {"step": 1})
            job.finish({"ok": True})
            streams = await asyncio.gather(first, second)
            assert streams[0] == streams[1]
            assert [e for _i, e in streams[0]] == [
                "queued", "started", "progress", "done"]
            assert [i for i, _e in streams[0]] == [0, 1, 2, 3]

        asyncio.run(scenario())

    def test_late_subscriber_replays_full_history(self):
        async def scenario():
            job = Job("j1", "simulate", "k" * 64, {})
            job.mark_running()
            job.publish("progress", {"step": 1})
            job.finish({"ok": True})
            events = [r["event"] async for r in job.stream()]
            assert events == ["queued", "started", "progress", "done"]

        asyncio.run(scenario())

    def test_disconnect_mid_stream_does_not_wedge_the_job(self):
        async def scenario():
            job = Job("j1", "simulate", "k" * 64, {})
            received = []

            async def flaky_consumer():
                async for record in job.stream():
                    received.append(record["event"])

            consumer = asyncio.ensure_future(flaky_consumer())
            await asyncio.sleep(0)
            consumer.cancel()          # client disconnected mid-stream
            try:
                await consumer
            except asyncio.CancelledError:
                pass
            job.mark_running()
            job.finish({"ok": True})   # must not block or raise
            assert await job.wait(1.0)
            # A fresh subscriber still sees the complete ordered history.
            events = [r["event"] async for r in job.stream()]
            assert events == ["queued", "started", "done"]

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Executor: in-flight dedup -> one pool task
# ---------------------------------------------------------------------------


class _FakeReport:
    def __init__(self, results):
        self.results = results
        self.manifest = {"failed": [], "completed": list(results),
                         "cache_served": 0}


class TestExecutorDedup:
    def test_two_concurrent_identical_jobs_one_execution(self, monkeypatch):
        calls = []

        def fake_run_sweep(tasks, jobs=None, progress=None, **_kw):
            calls.append([t.task_id for t in tasks])
            results = {}
            for index, task in enumerate(tasks, 1):
                progress(index, len(tasks), task.task_id, "run", 0.001)
                results[task.task_id] = {"kind": "functional",
                                         "output": [42]}
            return _FakeReport(results)

        monkeypatch.setattr(executor_mod, "run_sweep", fake_run_sweep)

        async def scenario():
            store = JobStore()
            executor = executor_mod.ServeExecutor(
                batch_window_s=0.005).start(asyncio.get_running_loop())
            try:
                job1, created1, served1 = store.submit("simulate",
                                                       {"source": SRC})
                assert created1 and served1 == "fresh"
                executor.submit(job1)
                # Second identical request lands while the first is queued:
                # single-flight attaches it, nothing new reaches the pool.
                job2, created2, served2 = store.submit("simulate",
                                                       {"source": SRC})
                assert job2 is job1 and not created2
                assert served2 == "inflight"
                assert await job1.wait(5.0)
                assert job1.result == {"kind": "functional", "output": [42]}
            finally:
                await executor.stop()

        asyncio.run(scenario())
        assert len(calls) == 1, "dedup'd job must not re-reach the pool"
        assert len(calls[0]) == 1

    def test_distinct_jobs_share_one_batch(self, monkeypatch):
        calls = []

        def fake_run_sweep(tasks, jobs=None, progress=None, **_kw):
            calls.append([t.task_id for t in tasks])
            return _FakeReport({t.task_id: {"kind": "functional",
                                            "output": []} for t in tasks})

        monkeypatch.setattr(executor_mod, "run_sweep", fake_run_sweep)

        async def scenario():
            store = JobStore()
            executor = executor_mod.ServeExecutor(
                batch_window_s=0.05).start(asyncio.get_running_loop())
            try:
                jobs = []
                for source in (SRC, SRC_LOOP):
                    job, created, _served = store.submit("simulate",
                                                         {"source": source})
                    assert created
                    executor.submit(job)
                    jobs.append(job)
                for job in jobs:
                    assert await job.wait(5.0)
            finally:
                await executor.stop()

        asyncio.run(scenario())
        assert len(calls) == 1, "both jobs must share one batch window"
        assert len(calls[0]) == 2

    def test_transient_failure_retries_then_succeeds(self, monkeypatch):
        from repro.harness.supervisor import RetryPolicy

        attempts = []

        def fake_run_sweep(tasks, jobs=None, progress=None, **_kw):
            attempts.append(len(tasks))
            if len(attempts) == 1:
                return _FakeReport({t.task_id: {
                    "kind": "error", "type": "OSError",
                    "message": "fork hiccup"} for t in tasks})
            return _FakeReport({t.task_id: {"kind": "functional",
                                            "output": [1]} for t in tasks})

        monkeypatch.setattr(executor_mod, "run_sweep", fake_run_sweep)

        async def scenario():
            store = JobStore()
            executor = executor_mod.ServeExecutor(
                batch_window_s=0.005,
                retry_policy=RetryPolicy(backoff_base_s=0.001),
            ).start(asyncio.get_running_loop())
            try:
                job, _created, _served = store.submit("simulate",
                                                      {"source": SRC})
                executor.submit(job)
                assert await job.wait(5.0)
                assert job.state == "done"
                assert job.attempts == 2
                events = [e["event"] for e in job.events]
                assert "retry" in events
            finally:
                await executor.stop()

        asyncio.run(scenario())
        assert attempts == [1, 1]

    def test_deterministic_failure_fails_immediately(self, monkeypatch):
        def fake_run_sweep(tasks, jobs=None, progress=None, **_kw):
            return _FakeReport({t.task_id: {
                "kind": "error", "type": "SimulationError",
                "message": "bad program"} for t in tasks})

        monkeypatch.setattr(executor_mod, "run_sweep", fake_run_sweep)

        async def scenario():
            store = JobStore()
            executor = executor_mod.ServeExecutor(
                batch_window_s=0.005).start(asyncio.get_running_loop())
            try:
                job, _created, _served = store.submit("simulate",
                                                      {"source": SRC})
                executor.submit(job)
                assert await job.wait(5.0)
                assert job.state == "failed"
                assert job.attempts == 1
                assert job.error["classification"] == "deterministic"
            finally:
                await executor.stop()

        asyncio.run(scenario())

    def test_core_target_isa_mismatch_fails_cleanly(self, monkeypatch):
        def fake_run_sweep(tasks, jobs=None, progress=None, **_kw):
            raise AssertionError("must not reach the pool")

        monkeypatch.setattr(executor_mod, "run_sweep", fake_run_sweep)

        async def scenario():
            store = JobStore()
            executor = executor_mod.ServeExecutor(
                batch_window_s=0.005).start(asyncio.get_running_loop())
            try:
                job, _created, _served = store.submit("simulate", {
                    "source": SRC, "core": "SS-2way", "target": "straight"})
                executor.submit(job)
                assert await job.wait(5.0)
                assert job.state == "failed"
                assert "not runnable" in job.error["message"]
            finally:
                await executor.stop()

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# HTTP server end to end
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One in-process server over a real socket, with an isolated cache."""
    from repro.serve.server import ServerHandle

    previous = cache_mod.swap_state()
    cache_mod.configure(
        str(tmp_path_factory.mktemp("serve-cache")), enabled=True)
    handle = ServerHandle(port=0, quota_rate=None, pool_jobs=2)
    handle.start()
    yield handle
    handle.stop()
    cache_mod.swap_state(previous)


def _client(server):
    from repro.serve.loadgen import HttpClient

    return HttpClient(server.host, server.port)


class TestHttpEndToEnd:
    def test_healthz_stats_isas(self, server):
        async def scenario():
            client = _client(server)
            try:
                status, health = await client.get_json("/v1/healthz")
                assert status == 200 and health["ok"]
                status, stats = await client.get_json("/v1/stats")
                assert status == 200 and "store" in stats
                status, inventory = await client.get_json("/v1/isas")
                assert status == 200
                assert set(inventory["isas"]) >= {"straight", "riscv", "bb"}
            finally:
                client.close()

        asyncio.run(scenario())

    def test_compile_simulate_and_store_dedup(self, server):
        async def scenario():
            client = _client(server)
            try:
                status, view = await client.post_json(
                    "/v1/compile?wait=60",
                    {"source": SRC, "target": "straight"})
                assert status == 200 and view["state"] == "done"
                assert view["result"]["asm"]
                assert view["result"]["diagnostics"]["ok"]

                status, view = await client.post_json(
                    "/v1/simulate?wait=60", {"source": SRC})
                assert status == 200 and view["state"] == "done"
                assert view["result"]["output"] == [42]
                assert view["served"] == "fresh"

                status, again = await client.post_json(
                    "/v1/simulate?wait=60", {"source": SRC})
                assert status == 200 and again["served"] == "store"
                assert again["job"] == view["job"]
            finally:
                client.close()

        asyncio.run(scenario())

    def test_timing_run_reports_cycles(self, server):
        async def scenario():
            client = _client(server)
            try:
                status, view = await client.post_json(
                    "/v1/simulate?wait=120",
                    {"source": SRC_LOOP, "core": "STRAIGHT-2way"})
                assert status == 200 and view["state"] == "done"
                assert view["result"]["stats"]["cycles"] > 0
            finally:
                client.close()

        asyncio.run(scenario())

    def test_sse_stream_over_http_is_ordered_and_terminates(self, server):
        async def scenario():
            client = _client(server)
            try:
                status, view = await client.post_json(
                    "/v1/simulate?wait=60", {"source": SRC})
                assert status == 200
                status, events = await client.stream_events(
                    f"/v1/jobs/{view['job']}/events")
                assert status == 200
                names = [e["event"] for e in events]
                assert names[0] == "queued" and names[-1] == "done"
                assert [int(e["id"]) for e in events] == list(
                    range(len(events)))
            finally:
                client.close()

        asyncio.run(scenario())

    def test_explore_all_registered_isas(self, server):
        """Acceptance: asm + diagnostics + Kanata trace for all three ISAs."""
        async def scenario():
            client = _client(server)
            try:
                status, view = await client.post_json(
                    "/v1/explore?wait=300", {"source": SRC_LOOP})
                assert status == 200 and view["state"] == "done"
                isas = view["result"]["isas"]
                assert set(isas) >= {"straight", "riscv", "bb"}
                for name, entry in isas.items():
                    assert entry["variants"], name
                    for variant in entry["variants"].values():
                        assert variant["asm"].strip()
                        assert variant["output"] == [45]
                    assert entry["timing"]["kanata"].startswith("Kanata")
                    assert entry["timing"]["cycles"] > 0
                # The STRAIGHT verifier must actually have run.
                straight_variant = next(
                    iter(isas["straight"]["variants"].values()))
                assert straight_variant["diagnostics"]["ok"]
            finally:
                client.close()

        asyncio.run(scenario())

    def test_job_404_and_route_404_and_bad_json(self, server):
        async def scenario():
            client = _client(server)
            try:
                status, _view = await client.get_json("/v1/jobs/nope")
                assert status == 404
                status, _view = await client.get_json("/v1/bogus")
                assert status == 404
                status, _h, body = await client.request(
                    "POST", "/v1/simulate", headers={})
                assert status == 400 or b"exactly one" in body
                status, view = await client.post_json(
                    "/v1/simulate", {"source": SRC, "bogus": True})
                assert status == 400
                assert "unknown simulate field" in view["error"]
            finally:
                client.close()

        asyncio.run(scenario())

    def test_quota_429_with_retry_after(self):
        from repro.serve.server import ServerHandle

        previous = cache_mod.swap_state()
        handle = ServerHandle(port=0, quota_rate=0.001, quota_burst=2.0)
        handle.start()
        try:
            async def scenario():
                client = _client(handle)
                try:
                    headers = {"X-Client-Id": "hog"}
                    for _ in range(2):
                        status, _view = await client.post_json(
                            "/v1/simulate", {"source": SRC},
                            headers=headers)
                        assert status in (200, 202)
                    status, response_headers, body = await client.request(
                        "POST", "/v1/simulate", body={"source": SRC},
                        headers=headers)
                    assert status == 429
                    assert float(response_headers["retry-after"]) > 0
                    assert b"quota" in body
                finally:
                    client.close()

            asyncio.run(scenario())
        finally:
            handle.stop()
            cache_mod.swap_state(previous)


# ---------------------------------------------------------------------------
# Cache configuration thread-safety (satellite a)
# ---------------------------------------------------------------------------


class TestCacheThreadSafety:
    def test_singleton_identity_under_concurrent_first_touch(self, tmp_path):
        previous = cache_mod.swap_state()
        try:
            cache_mod.configure(str(tmp_path / "cache"), enabled=True)
            barrier = threading.Barrier(8)
            seen = []
            lock = threading.Lock()

            def touch():
                barrier.wait()
                instance = cache_mod.result_cache()
                with lock:
                    seen.append(id(instance))

            threads = [threading.Thread(target=touch) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(seen)) == 1, \
                "concurrent first-touch must build exactly one cache"
        finally:
            cache_mod.swap_state(previous)

    def test_concurrent_lookups_keep_stats_consistent(self, tmp_path):
        previous = cache_mod.swap_state()
        try:
            cache_mod.configure(str(tmp_path / "cache"), enabled=True)
            results = cache_mod.result_cache()
            for index in range(4):
                results.put({"seed": index}, {"value": index})
            threads_n, iterations = 8, 50
            barrier = threading.Barrier(threads_n)
            failures = []

            def hammer(worker):
                barrier.wait()
                try:
                    for i in range(iterations):
                        key = {"seed": i % 4}
                        hit = cache_mod.result_cache().get(key)
                        assert hit == {"value": i % 4}
                        cache_mod.result_cache().put(
                            {"w": worker, "i": i}, {"v": i})
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    failures.append(exc)

            threads = [threading.Thread(target=hammer, args=(n,))
                       for n in range(threads_n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
            stats = results.stats
            lookups = threads_n * iterations
            assert stats.hits + stats.misses == lookups, \
                "racing stat bumps must not lose counts"
            assert stats.hits == lookups
            assert stats.stores == 4 + threads_n * iterations
        finally:
            cache_mod.swap_state(previous)

    def test_concurrent_configure_and_lookup_do_not_crash(self, tmp_path):
        previous = cache_mod.swap_state()
        try:
            stop = [False]
            failures = []

            def reconfigure():
                try:
                    for index in range(20):
                        cache_mod.configure(
                            str(tmp_path / f"cache{index % 2}"),
                            enabled=True)
                        time.sleep(0.001)
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)
                finally:
                    stop[0] = True

            def lookup():
                try:
                    while not stop[0]:
                        cache = cache_mod.result_cache()
                        if cache is not None:
                            cache.get({"probe": 1})
                except Exception as exc:  # noqa: BLE001
                    failures.append(exc)

            threads = [threading.Thread(target=reconfigure)] + [
                threading.Thread(target=lookup) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures
        finally:
            cache_mod.swap_state(previous)
