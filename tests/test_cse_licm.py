"""Tests for the CSE and LICM optimizer passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import Module, IRBuilder, ConstantInt, verify_function
from repro.ir.instructions import BinOp, GetElementPtr
from repro.ir.passes.cse import eliminate_common_subexpressions
from repro.ir.passes.licm import hoist_loop_invariants
from repro.frontend import compile_source
from tests.conftest import compile_and_run_both


class TestCse:
    def _two_adds(self, commuted=False):
        module = Module("m")
        func = module.add_function("f", ["a", "b"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        a, b = func.params
        first = builder.add(a, b)
        second = builder.add(b, a) if commuted else builder.add(a, b)
        result = builder.mul(first, second)
        builder.ret(result)
        return module, func

    def test_identical_binops_merged(self):
        module, func = self._two_adds()
        assert eliminate_common_subexpressions(func) == 1
        verify_function(func)
        adds = [i for i in func.instructions() if isinstance(i, BinOp) and i.opcode == "add"]
        assert len(adds) == 1

    def test_commutative_canonicalization(self):
        module, func = self._two_adds(commuted=True)
        assert eliminate_common_subexpressions(func) == 1

    def test_non_commutative_not_merged(self):
        module = Module("m")
        func = module.add_function("f", ["a", "b"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        a, b = func.params
        first = builder.sub(a, b)
        second = builder.sub(b, a)
        builder.ret(builder.mul(first, second))
        assert eliminate_common_subexpressions(func) == 0

    def test_loads_never_merged(self):
        module = Module("m")
        func = module.add_function("f", ["p"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        first = builder.load(func.params[0])
        builder.store(ConstantInt(1), func.params[0])
        second = builder.load(func.params[0])  # different value!
        builder.ret(builder.add(first, second))
        assert eliminate_common_subexpressions(func) == 0

    def test_cross_block_not_merged(self):
        """Local CSE only: same expression in sibling blocks is kept."""
        module = Module("m")
        func = module.add_function("f", ["c", "a"])
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.cond_br(func.params[0], left, right)
        builder.set_insert_point(left)
        builder.ret(builder.add(func.params[1], ConstantInt(1)))
        builder.set_insert_point(right)
        builder.ret(builder.add(func.params[1], ConstantInt(1)))
        assert eliminate_common_subexpressions(func) == 0

    def test_gep_merged(self):
        module = Module("m")
        func = module.add_function("f", ["p", "i"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        first = builder.gep(func.params[0], func.params[1])
        second = builder.gep(func.params[0], func.params[1])
        builder.store(ConstantInt(1), first)
        builder.ret(builder.load(second))
        assert eliminate_common_subexpressions(func) == 1
        verify_function(func)


class TestLicm:
    def _loop_with_invariant(self):
        source = """
        int g;
        int f(int n, int k) {
            int acc = 0;
            for (int i = 0; i < n; i++) {
                acc += i + k * 31;      // k*31 is invariant
            }
            return acc;
        }
        int main() { __out(f(g + 5, g + 2)); return 0; }
        """
        return compile_source(source, optimize=False)

    def test_hoists_invariant_mul(self):
        module = self._loop_with_invariant()
        from repro.ir.passes import promote_allocas, simplify_cfg

        func = module.functions["f"]
        promote_allocas(func)
        simplify_cfg(func)
        hoisted = hoist_loop_invariants(func)
        verify_function(func)
        assert hoisted >= 1
        # The multiply left the loop body.
        from repro.ir.analysis.loops import find_natural_loops

        loops = find_natural_loops(func)
        assert loops
        in_loop_muls = [
            i
            for block in loops[0].body
            for i in block.instructions
            if isinstance(i, BinOp) and i.opcode == "mul"
        ]
        assert in_loop_muls == []

    def test_variant_values_stay(self):
        source = """
        int g;
        int main() {
            int acc = g;
            for (int i = 0; i < 10; i++) acc += i * i;   // variant
            __out(acc);
            return 0;
        }
        """
        module = compile_source(source)  # full pipeline incl. LICM
        func = module.functions["main"]
        from repro.ir.analysis.loops import find_natural_loops

        loops = find_natural_loops(func)
        assert loops
        in_loop_muls = [
            i
            for block in loops[0].body
            for i in block.instructions
            if isinstance(i, BinOp) and i.opcode == "mul"
        ]
        assert len(in_loop_muls) == 1  # i*i cannot be hoisted

    def test_licm_preserves_semantics_both_isas(self):
        source = """
        int g;
        int main() {
            g = 3;
            int total = 0;
            for (int i = 0; i < 8; i++) {
                for (int j = 0; j < 8; j++) {
                    total += i * 64 + g * j;   // i*64 invariant in j-loop
                }
            }
            __out(total);
            return 0;
        }
        """
        compile_and_run_both(source)

    def test_zero_trip_loop_safe(self):
        """Hoisted pure code may execute even when the loop runs 0 times —
        that must not change observable behaviour (pure ops cannot trap)."""
        source = """
        int g;
        int main() {
            int acc = 7;
            int divisor = g;   // zero!
            for (int i = 0; i < g; i++) {    // zero-trip
                acc += 100 / divisor;        // would be div-by-zero
            }
            __out(acc);
            return 0;
        }
        """
        assert compile_and_run_both(source) == [7]


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=-20, max_value=20),
    st.integers(min_value=-20, max_value=20),
)
def test_licm_equivalence_fuzz(trip, k1, k2):
    source = f"""
    int g;
    int main() {{
        int acc = g;
        for (int i = 0; i < {trip}; i++) {{
            acc += ({k1} * 13 + {k2}) ^ (i + g * {k1});
            acc -= g * {k2};
        }}
        __out(acc);
        return 0;
    }}
    """
    compile_and_run_both(source)
