"""RISC-V backend: register allocation, spilling, frames, phi copies."""

import pytest

from repro.frontend import compile_source
from repro.compiler.riscv_backend import compile_to_riscv
from repro.compiler.riscv_backend.regalloc import (
    build_intervals,
    linear_scan,
    T_REGS,
    S_REGS,
)
from repro.compiler.riscv_backend.isel import RiscvISel
from repro.compiler.data_layout import DataLayout
from repro.ir.passes.split_critical_edges import split_critical_edges
from repro.core.api import build, run_functional
from repro.riscv import RiscvInterpreter


def _isel(source, func_name="main"):
    module = compile_source(source)
    func = module.functions[func_name]
    split_critical_edges(func)
    return RiscvISel(func, DataLayout(module)).run()


class TestLinearScan:
    def test_few_values_all_allocated(self):
        rvfunc = _isel("int main() { int a = 1; int b = 2; __out(a + b); return 0; }")
        allocation = linear_scan(build_intervals(rvfunc))
        assert allocation.spilled == []

    def test_call_crossing_values_get_callee_saved(self):
        source = """
        int f(int x) { return x + 1; }
        int main() {
            int keep = f(1);
            int also = f(2);
            __out(keep + also);
            return 0;
        }
        """
        rvfunc = _isel(source)
        allocation = linear_scan(build_intervals(rvfunc))
        intervals = {iv.vreg: iv for iv in build_intervals(rvfunc)}
        for vreg, phys in allocation.assignment.items():
            if intervals[vreg].crosses_call:
                assert phys in S_REGS, f"{vreg} crosses a call but got x{phys}"

    def test_register_pressure_forces_spills(self):
        decls = "\n".join(f"int v{i} = g + {i};" for i in range(30))
        uses = " + ".join(f"v{i}" for i in range(30))
        source = f"""
        int g;
        int main() {{
            {decls}
            __out({uses});
            return 0;
        }}
        """
        rvfunc = _isel(source)
        allocation = linear_scan(build_intervals(rvfunc))
        assert len(allocation.spilled) > 0
        # ...and the program still runs correctly with the spill code:
        result = build(source)
        assert run_functional(result.riscv).output == [sum(range(30))]

    def test_distinct_registers_for_overlapping_intervals(self):
        rvfunc = _isel(
            """
            int g;
            int main() {
                int a = g + 1; int b = g + 2; int c = g + 3;
                __out(a * b + c);
                return 0;
            }
            """
        )
        intervals = build_intervals(rvfunc)
        allocation = linear_scan(intervals)
        by_vreg = {iv.vreg: iv for iv in intervals}
        assigned = [
            (vreg, phys) for vreg, phys in allocation.assignment.items()
        ]
        for i, (v1, p1) in enumerate(assigned):
            for v2, p2 in assigned[i + 1 :]:
                iv1, iv2 = by_vreg[v1], by_vreg[v2]
                if p1 == p2:
                    assert not (
                        iv1.start <= iv2.end and iv2.start <= iv1.end
                    ), f"{v1} and {v2} overlap in x{p1}"


class TestFramesAndEmission:
    def test_leaf_without_frame(self):
        source = "int f(int x) { return x * 3; } int main() { __out(f(2)); return 0; }"
        compilation = compile_to_riscv(compile_source(source))
        assert compilation.stats["f"]["frame_words"] == 0

    def test_caller_saves_ra(self):
        source = "int f(int x) { return x; } int main() { __out(f(5)); return 0; }"
        compilation = compile_to_riscv(compile_source(source))
        text = compilation.asm_text()
        assert "sw ra" in text and "lw ra" in text

    def test_sp_restored_at_exit(self):
        from repro.common.layout import STACK_TOP

        result = build(
            """
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { __out(fib(8)); return 0; }
            """
        )
        interp = RiscvInterpreter(result.riscv.program)
        interp.run(1_000_000)
        assert interp.regs[2] == STACK_TOP

    def test_dead_move_elimination(self):
        source = """
        int main() {
            int unused = 5 * 5;
            __out(1);
            return 0;
        }
        """
        compilation = compile_to_riscv(compile_source(source))
        # The dead computation is folded/eliminated before emission.
        assert compilation.stats["main"]["instructions"] < 12

    def test_phi_swap_compiles_to_cycle_breaking_copies(self):
        source = """
        int g;
        int main() {
            int a = g + 3; int b = g + 1000;
            for (int i = 0; i < 9; i++) { int t = a; a = b; b = t; }
            __out(a); __out(b);
            return 0;
        }
        """
        result = build(source)
        assert run_functional(result.riscv).output == [1000, 3]


class TestCompareBranchFusion:
    def test_single_use_icmp_fuses(self):
        source = """
        int g;
        int main() {
            if (g < 5) __out(1); else __out(2);
            return 0;
        }
        """
        compilation = compile_to_riscv(compile_source(source))
        text = compilation.asm_text()
        assert "blt" in text
        assert "slt " not in text  # no separate compare materialization

    def test_multi_use_icmp_not_fused(self):
        source = """
        int g;
        int main() {
            int cmp = g < 5;
            if (cmp) __out(cmp);
            return 0;
        }
        """
        compilation = compile_to_riscv(compile_source(source))
        text = compilation.asm_text()
        assert "slt" in text
