"""Observability subsystem tests: event bus, Kanata logs, attribution, profiler.

Covers the PR-5 acceptance criteria: observed runs are cycle-identical to
plain runs, attribution buckets conserve ``issue_width x cycles`` on shipped
workloads for both ISAs, the Kanata writer round-trips through the bundled
parser (golden fixture + property test), and the stats surface exports the
buckets deterministically.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import InvariantViolation
from repro.core.api import simulate
from repro.core.configs import TABLE1
from repro.guardrails import StallAttributionChecker
from repro.obs import (
    ATTRIBUTION_BUCKETS,
    HotRegionProfiler,
    KanataWriter,
    ObserverBus,
    PipelineSink,
    RecordingSink,
    StallAttributionAccountant,
    parse_kanata,
)
from repro.workloads import build_workload

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Dedicated golden-trace program (do NOT reuse conftest's SMALL_PROGRAM:
#: the golden Kanata fixture pins this exact source + core).
GOLDEN_SOURCE = """
int main() {
    int acc = 0;
    for (int i = 0; i < 6; i++) {
        if (i % 2 == 0) acc += i * 3;
        else acc -= 1;
    }
    __out(acc);
    return 0;
}
"""


def _sim(binary, config, sinks):
    return simulate(binary, config, warm_caches=True,
                    observer=ObserverBus(sinks))


# ---------------------------------------------------------------------------
# Event bus
# ---------------------------------------------------------------------------


class TestObserverBus:
    def test_empty_bus_inactive(self):
        bus = ObserverBus()
        assert not bus.active
        assert not bus.cycle_granular

    def test_cycle_granularity_comes_from_sinks(self):
        assert not ObserverBus([KanataWriter()]).cycle_granular
        assert ObserverBus([StallAttributionAccountant()]).cycle_granular
        assert ObserverBus(
            [KanataWriter(), StallAttributionAccountant()]).cycle_granular

    def test_fanout_skips_unimplemented_hooks(self):
        class OnlyCommit(PipelineSink):
            def on_commit(self, seq, entry, cycle):
                pass

        bus = ObserverBus([OnlyCommit()])
        assert bus._commit and not bus._fetch and not bus._cycle

    def test_engine_drops_empty_bus(self, small_build):
        config = TABLE1["SS-2way"]()
        binary = small_build.all()["SS"]
        plain = simulate(binary, config, warm_caches=True)
        observed = simulate(binary, config, warm_caches=True,
                            observer=ObserverBus())
        assert observed.cycles == plain.cycles

    def test_recording_sink_lifecycle_order(self, small_build):
        config = TABLE1["STRAIGHT-2way"]()
        binary = small_build.all()["STRAIGHT-RE+"]
        rec = RecordingSink()
        result = _sim(binary, config, [rec])
        commits = rec.of_kind("commit")
        assert len(commits) == result.stats.instructions
        # Per-instruction lifecycle cycles are monotone through the pipe.
        milestones = {}
        for kind, cycle, seq, _detail in rec.records:
            milestones.setdefault(seq, {})[kind] = cycle
        assert milestones
        for seq, stages in milestones.items():
            if "commit" not in stages:
                continue  # still in flight at the end of the trace window
            assert stages["fetch"] <= stages["dispatch"] <= stages["commit"]
            if "issue" in stages:
                assert stages["dispatch"] <= stages["issue"]
                assert stages["issue"] < stages["commit"]

    def test_observed_cycles_bit_identical(self, small_build):
        for core, label in (("SS-2way", "SS"),
                            ("STRAIGHT-2way", "STRAIGHT-RE+")):
            config = TABLE1[core]()
            binary = small_build.all()[label]
            plain = simulate(binary, config, warm_caches=True)
            # Instruction-granular sink: idle skipping stays on.
            kanata = _sim(binary, config, [KanataWriter()])
            # Cycle-granular sink: idle skipping forced off.
            attributed = _sim(binary, config, [StallAttributionAccountant()])
            assert kanata.cycles == plain.cycles
            assert attributed.cycles == plain.cycles


# ---------------------------------------------------------------------------
# Stall attribution
# ---------------------------------------------------------------------------


class TestAttribution:
    @pytest.mark.parametrize("workload", ["dhrystone", "coremark"])
    @pytest.mark.parametrize("core,label", [
        ("SS-2way", "SS"),
        ("STRAIGHT-2way", "STRAIGHT-RE+"),
    ])
    def test_conservation_on_shipped_workloads(self, workload, core, label):
        iterations = 3 if workload == "dhrystone" else 1
        binary = build_workload(workload, iterations).all()[label]
        config = TABLE1[core]()
        accountant = StallAttributionAccountant()
        result = _sim(binary, config, [accountant])
        assert accountant.conserved()
        assert accountant.cycles_observed == result.cycles
        report = accountant.report()
        assert report["slots_charged"] == report["slots_total"] == (
            config.issue_width * result.cycles
        )

    def test_rmov_bucket_zero_on_ss(self, small_build):
        accountant = StallAttributionAccountant()
        _sim(small_build.all()["SS"], TABLE1["SS-2way"](), [accountant])
        assert accountant.buckets["slots_rmov_overhead"] == 0

    def test_re_plus_cuts_rmov_overhead(self, small_build):
        config = TABLE1["STRAIGHT-2way"]()
        raw, re_plus = StallAttributionAccountant(), StallAttributionAccountant()
        _sim(small_build.all()["STRAIGHT-RAW"], config, [raw])
        _sim(small_build.all()["STRAIGHT-RE+"], config, [re_plus])
        assert raw.buckets["slots_rmov_overhead"] > \
            re_plus.buckets["slots_rmov_overhead"]

    def test_buckets_exported_to_stats(self, small_build):
        accountant = StallAttributionAccountant()
        result = _sim(small_build.all()["SS"], TABLE1["SS-2way"](),
                      [accountant])
        data = result.stats.as_dict()
        for bucket in ATTRIBUTION_BUCKETS:
            assert data[bucket] == accountant.buckets[bucket]
        assert data["slots_retiring"] > 0

    def test_buckets_zero_without_accountant(self, small_build):
        result = simulate(small_build.all()["SS"], TABLE1["SS-2way"](),
                          warm_caches=True)
        for bucket in ATTRIBUTION_BUCKETS:
            assert result.stats.as_dict()[bucket] == 0

    def test_checker_wired_by_guardrailed_observed_run(self, small_build):
        accountant = StallAttributionAccountant()
        result = simulate(small_build.all()["SS"], TABLE1["SS-2way"](),
                          warm_caches=True, guardrails=True,
                          observer=ObserverBus([accountant]))
        assert result.guardrail_report is not None
        assert "stall-attribution" in result.guardrail_report["checkers"]
        assert accountant.conserved()

    def test_checker_rejects_bad_charges(self):
        class BrokenAccountant:
            issue_width = 2
            cycles_observed = 1
            total_charged = 3
            last_cycle_charges = {"slots_retiring": 3}
            buckets = {"slots_retiring": 3}

            def conserved(self):
                return False

        class View:
            cycle = 7

            def occupancy(self):
                return {}

        checker = StallAttributionChecker(BrokenAccountant())
        with pytest.raises(InvariantViolation):
            checker.on_cycle(View())
        with pytest.raises(InvariantViolation):
            checker.end_run(View())


# ---------------------------------------------------------------------------
# Kanata writer + parser
# ---------------------------------------------------------------------------


class _Entry:
    def __init__(self, pc, mnemonic):
        self.pc = pc
        self.mnemonic = mnemonic


class TestKanata:
    def test_round_trip_all_binaries(self, small_build):
        for core, label in (("SS-2way", "SS"),
                            ("STRAIGHT-2way", "STRAIGHT-RAW"),
                            ("STRAIGHT-4way", "STRAIGHT-RE+")):
            writer = KanataWriter()
            _sim(small_build.all()[label], TABLE1[core](), [writer])
            assert writer.dropped == 0
            assert parse_kanata(writer.render()) == writer.canonical_records()

    def test_golden_log(self):
        from repro.core.api import build

        writer = KanataWriter()
        binary = build(GOLDEN_SOURCE).all()["STRAIGHT-RE+"]
        _sim(binary, TABLE1["STRAIGHT-2way"](), [writer])
        with open(os.path.join(FIXTURES, "golden_kanata.log")) as handle:
            golden = handle.read()
        assert writer.render() == golden
        assert parse_kanata(golden) == writer.canonical_records()

    def test_writer_writes_path(self, small_build, tmp_path):
        path = tmp_path / "run.kanata"
        writer = KanataWriter(path=str(path))
        _sim(small_build.all()["SS"], TABLE1["SS-2way"](), [writer])
        text = path.read_text()
        assert text.startswith("Kanata\t0004\n")
        assert parse_kanata(text) == writer.canonical_records()

    def test_max_insns_cap(self, small_build):
        writer = KanataWriter(max_insns=10)
        _sim(small_build.all()["SS"], TABLE1["SS-2way"](), [writer])
        assert len(writer.canonical_records()) == 10
        assert writer.dropped > 0
        parse_kanata(writer.render())  # capped log still well-formed

    @pytest.mark.parametrize("text,message", [
        ("bogus\n", "missing 'Kanata' header"),
        ("Kanata\t0004\nI\t0\t0\t0\n", "before 'C='"),
        ("Kanata\t0004\nC=\t0\nL\t5\t0\tx\n", "not opened"),
        ("Kanata\t0004\nC=\t0\nI\t0\t0\t0\nE\t0\t0\tF\n", "never started"),
        ("Kanata\t0004\nC=\t0\nI\t0\t0\t0\nS\t0\t0\tF\n", "unterminated"),
        ("Kanata\t0004\nC=\t0\nZ\t0\n", "unknown record kind"),
    ])
    def test_parser_rejects_malformed(self, text, message):
        with pytest.raises(ValueError, match=message):
            parse_kanata(text)

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, data):
        """Synthetic lifecycle streams round-trip write -> parse exactly."""
        writer = KanataWriter()
        n = data.draw(st.integers(min_value=1, max_value=12), label="n")
        cycle = 0
        for seq in range(n):
            cycle += data.draw(st.integers(0, 3), label="fetch_gap")
            entry = _Entry(pc=0x1000 + 4 * seq, mnemonic=f"OP{seq % 5}")
            writer.on_fetch(seq, entry, cycle)
            if data.draw(st.booleans(), label="mispredict"):
                writer.on_mispredict(seq, entry, cycle)
            if not data.draw(st.booleans(), label="dispatched"):
                continue  # still in the front-end pipe at end of run
            dispatch = cycle + 1 + data.draw(st.integers(0, 4), label="d")
            tags = data.draw(
                st.lists(st.integers(0, max(0, seq - 1)), max_size=2,
                         unique=True),
                label="tags") if seq else []
            writer.on_dispatch(seq, entry, dispatch, tags)
            commit = dispatch
            if data.draw(st.booleans(), label="issued"):
                issue = dispatch + data.draw(st.integers(0, 4), label="i")
                writer.on_issue(seq, entry, issue, issue + 1)
                complete = issue + 1 + data.draw(st.integers(0, 3), label="x")
                writer.on_complete(seq, complete)
                commit = complete
            if data.draw(st.booleans(), label="squashed"):
                writer.on_squash(seq, commit, "mem-order")
            if data.draw(st.booleans(), label="committed"):
                commit += data.draw(st.integers(0, 3), label="c")
                writer.on_commit(seq, entry, commit)
        assert parse_kanata(writer.render()) == writer.canonical_records()


# ---------------------------------------------------------------------------
# Hot-region profiler
# ---------------------------------------------------------------------------


class TestProfiler:
    def test_commit_totals_and_regions(self, small_build):
        binary = small_build.all()["STRAIGHT-RE+"]
        profiler = HotRegionProfiler(program=binary.program)
        result = _sim(binary, TABLE1["STRAIGHT-2way"](), [profiler])
        report = profiler.report(top=5)
        assert report["total_commits"] == result.stats.instructions
        assert sum(r["commits"] for r in report["regions"]) == \
            report["total_commits"]
        names = {row["region"] for row in report["regions"]}
        assert any(name and name.startswith("fib") for name in names)
        top_row = report["hot_pcs"][0]
        assert top_row["commits"] >= report["hot_pcs"][-1]["commits"]
        assert top_row["avg_latency"] > 0

    def test_locate_maps_source_lines(self, small_build):
        binary = small_build.all()["STRAIGHT-RE+"]
        profiler = HotRegionProfiler(program=binary.program)
        _sim(binary, TABLE1["STRAIGHT-2way"](), [profiler])
        pc = max(profiler.commits, key=profiler.commits.get)
        index, region, _line = profiler.locate(pc)
        assert index == binary.program.index_of_pc(pc)
        assert region is not None

    def test_degrades_without_program(self, small_build):
        profiler = HotRegionProfiler()
        _sim(small_build.all()["SS"], TABLE1["SS-2way"](), [profiler])
        assert profiler.locate(0x1000) == (None, None, None)
        report = profiler.report(top=3)
        assert report["total_commits"] > 0
        assert all(row["region"] is None for row in report["hot_pcs"])
        assert profiler.text(top=3)  # renders without regions


# ---------------------------------------------------------------------------
# Stats export determinism + sweep cache keys
# ---------------------------------------------------------------------------


class TestStatsAndCache:
    def test_stats_export_deterministic(self, small_build):
        config = TABLE1["SS-2way"]()
        binary = small_build.all()["SS"]
        first = simulate(binary, config, warm_caches=True).stats.as_dict()
        second = simulate(binary, config, warm_caches=True).stats.as_dict()
        assert json.dumps(first) == json.dumps(second)
        # Declaration order: the attribution buckets appear as one
        # contiguous group, in ATTRIBUTION_BUCKETS order.
        keys = list(first)
        positions = [keys.index(bucket) for bucket in ATTRIBUTION_BUCKETS]
        assert positions == sorted(positions)
        assert positions[-1] - positions[0] == len(ATTRIBUTION_BUCKETS) - 1

        # Nested cache tables are key-sorted at every level.
        def check(node):
            if isinstance(node, dict):
                assert list(node) == sorted(node)
                for child in node.values():
                    check(child)
        check(first["cache"])

    def test_timing_key_separates_attribution_runs(self, small_build):
        from repro.harness.sweep import _timing_key

        config = TABLE1["SS-2way"]()
        binary = small_build.all()["SS"]
        plain = _timing_key(binary, config, warm=True)
        attributed = _timing_key(binary, config, warm=True, attribution=True)
        assert plain != attributed

    def test_sweep_task_carries_attribution_payload(self):
        from repro.harness.experiments import attribution_task
        from repro.harness.sweep import execute_task

        config = TABLE1["SS-2way"]()
        task = attribution_task("dhrystone", "SS", config)
        assert task.attribution
        payload = execute_task(task)
        report = payload["attribution"]
        assert report["conserved"]
        assert report["slots_charged"] == report["slots_total"]
        assert sum(report["buckets"].values()) == report["slots_charged"]
