"""Cache hierarchy, stream prefetcher, and load-store queue tests."""

from hypothesis import given, strategies as st

from repro.uarch.caches import CacheLevel, StreamPrefetcher, MemoryHierarchy
from repro.uarch.config import CacheConfig
from repro.uarch.lsq import LoadStoreQueue, MemDependencePredictor
from repro.uarch.core import SimStats


def small_hierarchy(prefetcher=None):
    return MemoryHierarchy(
        l1i=CacheLevel(1024, 2, 64, 4, "l1i"),
        l1d=CacheLevel(1024, 2, 64, 4, "l1d"),
        l2=CacheLevel(8192, 4, 64, 12, "l2"),
        l3=None,
        mem_latency=200,
        prefetcher=prefetcher,
    )


class TestCacheLevel:
    def test_miss_then_hit(self):
        cache = CacheLevel(1024, 2, 64, 4, "t")
        assert not cache.lookup(5)
        cache.insert(5)
        assert cache.lookup(5)
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_order(self):
        cache = CacheLevel(2 * 64 * 2, 2, 64, 4, "t")  # 2 sets, 2 ways
        set_stride = cache.num_sets
        a, b, c = 0, set_stride, 2 * set_stride  # all map to set 0
        cache.insert(a)
        cache.insert(b)
        cache.lookup(a)  # touch a: b becomes LRU
        cache.insert(c)  # evicts b
        assert cache.contains(a)
        assert not cache.contains(b)
        assert cache.contains(c)

    def test_geometry_validation(self):
        import pytest

        with pytest.raises(ValueError):
            CacheLevel(1000, 3, 64, 4, "bad")

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=60))
    def test_occupancy_never_exceeds_ways(self, lines):
        cache = CacheLevel(4 * 64 * 2, 2, 64, 4, "t")
        for line in lines:
            cache.insert(line)
        for cache_set in cache.sets:
            assert len(cache_set) <= cache.ways

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=60))
    def test_insert_then_contains(self, lines):
        cache = CacheLevel(4 * 64 * 4, 4, 64, 4, "t")
        for line in lines:
            cache.insert(line)
            assert cache.contains(line)


class TestHierarchy:
    def test_l1_hit_latency(self):
        h = small_hierarchy()
        h.access_data(0x1000)  # cold miss
        assert h.access_data(0x1000) == 4

    def test_miss_latencies_cascade(self):
        h = small_hierarchy()
        assert h.access_data(0x1000) == 200  # memory
        # Three more lines in the same L1 set (8 sets x 64B = 512B stride)
        # evict 0x1000 from the 2-way L1, but they land in *different* L2
        # sets (32 sets), so 0x1000 survives in L2.
        for i in range(1, 4):
            h.access_data(0x1000 + i * 512)
        assert h.access_data(0x1000) == 12  # L2 hit

    def test_instruction_and_data_split(self):
        h = small_hierarchy()
        h.access_instr(0x2000)
        # Same line in L1I does not help L1D, but L2 does (inclusive fill).
        assert h.access_data(0x2000) == 12

    def test_stats_keys(self):
        h = small_hierarchy()
        h.access_data(0x0)
        stats = h.stats()
        assert stats["l1d_misses"] == 1
        assert "l2_misses" in stats


class TestPrefetcher:
    def test_detects_ascending_stream(self):
        prefetcher = StreamPrefetcher(streams=4, degree=2)
        assert prefetcher.on_miss(100) == []
        assert prefetcher.on_miss(101) == [102, 103]
        assert prefetcher.on_miss(102) == [103, 104]

    def test_ignores_random_misses(self):
        prefetcher = StreamPrefetcher(streams=4, degree=2)
        assert prefetcher.on_miss(10) == []
        assert prefetcher.on_miss(50) == []
        assert prefetcher.on_miss(90) == []

    def test_hierarchy_integration(self):
        h = small_hierarchy(prefetcher=StreamPrefetcher(streams=4, degree=4))
        base = 0x10000
        h.access_data(base)  # miss, starts stream
        h.access_data(base + 64)  # miss, triggers prefetch of next 4 lines
        assert h.access_data(base + 128) == 4  # prefetched: L1 hit

    def test_stream_table_bounded(self):
        prefetcher = StreamPrefetcher(streams=2, degree=1)
        for line in (10, 20, 30, 40):
            prefetcher.on_miss(line)
        assert len(prefetcher.recent) == 2


class TestMemDependencePredictor:
    def test_defaults_to_speculate(self):
        mdp = MemDependencePredictor()
        assert not mdp.predicts_conflict(0x100)

    def test_trains_on_violation(self):
        mdp = MemDependencePredictor()
        mdp.train_conflict(0x100)
        assert mdp.predicts_conflict(0x100)

    def test_decays(self):
        mdp = MemDependencePredictor()
        mdp.train_conflict(0x100)
        mdp.train_no_conflict(0x100)
        mdp.train_no_conflict(0x100)
        assert not mdp.predicts_conflict(0x100)


class TestLSQ:
    def _fresh(self):
        return LoadStoreQueue(4, 4), MemDependencePredictor(), small_hierarchy(), SimStats()

    def test_store_to_load_forwarding(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)
        lsq.add_load(2, 0x100, pc=0x10)
        lsq.store_executed(1, 0x100, data_ready=5)
        kind, latency = lsq.try_issue_load(2, 10, mdp, h, stats)
        assert kind == "ok"
        assert latency == 2  # forwarded, data already ready
        assert stats.store_forwards == 1

    def test_forward_waits_for_store_data(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)
        lsq.add_load(2, 0x100, pc=0x10)
        lsq.store_executed(1, 0x100, data_ready=20)
        kind, latency = lsq.try_issue_load(2, 10, mdp, h, stats)
        assert kind == "ok"
        assert latency == 2 + 10  # waits until the store data is ready

    def test_speculates_past_unknown_store_by_default(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)  # address unknown
        lsq.add_load(2, 0x100, pc=0x10)
        kind, latency = lsq.try_issue_load(2, 10, mdp, h, stats)
        assert kind == "ok"  # went to the cache

    def test_predicted_conflict_waits(self):
        lsq, mdp, h, stats = self._fresh()
        mdp.train_conflict(0x10)
        lsq.add_store(1)
        lsq.add_load(2, 0x100, pc=0x10)
        kind, payload = lsq.try_issue_load(2, 10, mdp, h, stats)
        assert kind == "wait"
        assert payload == 1

    def test_violation_detection(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)
        lsq.add_load(2, 0x100, pc=0x10)
        lsq.try_issue_load(2, 10, mdp, h, stats)  # speculates
        violations = lsq.store_executed(1, 0x100, data_ready=15)
        assert violations == [2]

    def test_no_violation_for_different_address(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)
        lsq.add_load(2, 0x200, pc=0x10)
        lsq.try_issue_load(2, 10, mdp, h, stats)
        assert lsq.store_executed(1, 0x100, data_ready=15) == []

    def test_youngest_matching_store_forwards(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_store(1)
        lsq.add_store(2)
        lsq.add_load(3, 0x100, pc=0x10)
        lsq.store_executed(1, 0x100, data_ready=3)
        lsq.store_executed(2, 0x100, data_ready=8)
        kind, latency = lsq.try_issue_load(3, 20, mdp, h, stats)
        assert kind == "ok" and latency == 2  # store 2's data, already ready

    def test_capacity_accounting(self):
        lsq = LoadStoreQueue(1, 1)
        assert lsq.can_add_load()
        lsq.add_load(1, 0x100, pc=0)
        assert not lsq.can_add_load()
        lsq.commit_load(1)
        assert lsq.can_add_load()

    def test_stores_do_not_forward_to_older_loads(self):
        lsq, mdp, h, stats = self._fresh()
        lsq.add_load(1, 0x100, pc=0x10)
        lsq.add_store(2)
        lsq.store_executed(2, 0x100, data_ready=5)
        kind, latency = lsq.try_issue_load(1, 10, mdp, h, stats)
        assert kind == "ok"
        assert stats.store_forwards == 0  # store is younger; no forwarding
