"""Cache integrity tests: checksums, quarantine, fsck, concurrent writers.

The acceptance bar (ISSUE 6): ``fsck`` detects 100% of seeded corrupt
entries and never flags — let alone evicts — a valid one; that invariant is
property-tested over random payloads and random corruptions.
"""

import json
import multiprocessing
import os
import pickle
import random
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness import cache as cache_mod
from repro.harness.cache import (
    ARTIFACT_MAGIC,
    SCHEMA_VERSION,
    ArtifactCache,
    ResultCache,
    fsck,
    payload_checksum,
    quarantine_paths,
)
from repro.harness.chaos import corrupt_file

PAYLOAD = {"kind": "timing", "cycles": 12345, "ipc": 1.5,
           "out": [1, 2, 3], "stats": {"l1d.hits": 99}}


def seeded_layer(root, layer_cls, count=3):
    layer = layer_cls(root)
    keys = [{"probe": layer_cls.__name__, "n": index}
            for index in range(count)]
    for index, key in enumerate(keys):
        layer.put(key, dict(PAYLOAD, cycles=1000 + index))
    return layer, keys


class TestRoundTrip:
    @pytest.mark.parametrize("layer_cls", [ResultCache, ArtifactCache])
    def test_put_get_round_trip(self, tmp_path, layer_cls):
        layer, keys = seeded_layer(str(tmp_path), layer_cls)
        for index, key in enumerate(keys):
            value = layer.get(key)
            assert value == dict(PAYLOAD, cycles=1000 + index)
        assert layer.stats.hits == len(keys)
        assert layer.stats.quarantined == 0

    def test_result_entry_carries_checksum(self, tmp_path):
        layer, keys = seeded_layer(str(tmp_path), ResultCache, count=1)
        envelope = json.load(open(layer.entry_paths()[0]))
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["sha256"] == payload_checksum(
            {"schema": envelope["schema"], "value": envelope["value"]}
        )

    def test_artifact_entry_carries_header(self, tmp_path):
        layer, keys = seeded_layer(str(tmp_path), ArtifactCache, count=1)
        raw = open(layer.entry_paths()[0], "rb").read()
        assert raw.startswith(ARTIFACT_MAGIC)


class TestCorruptionHandling:
    @pytest.mark.parametrize("layer_cls", [ResultCache, ArtifactCache])
    @pytest.mark.parametrize("mode", ["bitflip", "truncate", "garbage"])
    def test_corrupt_entry_quarantined_not_served(self, tmp_path, layer_cls,
                                                  mode):
        layer, keys = seeded_layer(str(tmp_path), layer_cls, count=1)
        path = layer.entry_paths()[0]
        corrupt_file(path, random.Random(11), mode=mode)
        if layer.classify(path) == "valid":
            pytest.skip("corruption landed on a don't-care byte")
        assert layer.get(keys[0]) is None
        assert layer.stats.quarantined == 1
        assert not os.path.exists(path)  # moved off the live path...
        qfiles = quarantine_paths(str(tmp_path))
        assert [os.path.basename(p) for p in qfiles] == [
            os.path.basename(path)
        ]  # ...into quarantine, evidence preserved

    def test_quarantine_name_collision_gets_suffix(self, tmp_path):
        layer, keys = seeded_layer(str(tmp_path), ResultCache, count=1)
        for _ in range(2):
            path = layer.entry_paths()[0]
            with open(path, "w") as handle:
                handle.write("not json at all")
            assert layer.get(keys[0]) is None
            layer.put(keys[0], PAYLOAD)  # refill the slot
        names = [os.path.basename(p) for p in quarantine_paths(str(tmp_path))]
        assert len(names) == 2 and len(set(names)) == 2

    def test_schema_field_bitflip_is_corrupt_not_stale(self, tmp_path):
        # The checksum covers the schema field: tampering with it must land
        # in quarantine, not silently self-evict as "stale".
        layer, keys = seeded_layer(str(tmp_path), ResultCache, count=1)
        path = layer.entry_paths()[0]
        envelope = json.load(open(path))
        envelope["schema"] = SCHEMA_VERSION + 1
        with open(path, "w") as handle:
            json.dump(envelope, handle, separators=(",", ":"))
        assert layer.classify(path) == "corrupt"

    def test_legacy_result_entry_self_evicts(self, tmp_path):
        # Pre-PR6 layout: no sha256 field.  Stale, not corrupt: evicted.
        layer, keys = seeded_layer(str(tmp_path), ResultCache, count=1)
        path = layer.entry_paths()[0]
        with open(path, "w") as handle:
            json.dump({"schema": SCHEMA_VERSION, "value": PAYLOAD}, handle)
        assert layer.classify(path) == "stale"
        assert layer.get(keys[0]) is None
        assert not os.path.exists(path)
        assert layer.stats.quarantined == 0
        assert quarantine_paths(str(tmp_path)) == []

    def test_legacy_artifact_pickle_self_evicts(self, tmp_path):
        layer, keys = seeded_layer(str(tmp_path), ArtifactCache, count=1)
        path = layer.entry_paths()[0]
        with open(path, "wb") as handle:
            pickle.dump({"schema": SCHEMA_VERSION, "value": PAYLOAD}, handle)
        assert layer.classify(path) == "stale"
        assert layer.get(keys[0]) is None
        assert layer.stats.quarantined == 0


class TestFsck:
    def seed_mixed(self, root):
        """valid entries + 1 corrupt per layer + 1 stale + 1 orphan tmp."""
        rlayer, rkeys = seeded_layer(root, ResultCache, count=3)
        alayer, akeys = seeded_layer(root, ArtifactCache, count=3)
        corrupt = []
        for layer in (rlayer, alayer):
            victim = layer.entry_paths()[0]
            corrupt_file(victim, random.Random(5), mode="garbage")
            corrupt.append(victim)
        stale = rlayer.entry_paths()[1]
        with open(stale, "w") as handle:
            json.dump({"schema": 1, "value": {}}, handle)
        orphan = os.path.join(os.path.dirname(stale), "x.json.tmp.99.1")
        with open(orphan, "w") as handle:
            handle.write("half-writ")
        return corrupt, stale, orphan

    def test_detects_all_seeded_corruption(self, tmp_path):
        root = str(tmp_path)
        corrupt, stale, orphan = self.seed_mixed(root)
        report = fsck(root, repair=False)
        assert not report["ok"]
        assert report["corrupt_total"] == 2
        found = sorted(p for layer in report["layers"].values()
                       for p in layer["corrupt"])
        assert found == sorted(corrupt)
        assert report["layers"]["results"]["stale"] == [stale]
        assert report["layers"]["results"]["orphan_tmp"] == [orphan]
        # Scan-only: nothing moved or deleted.
        assert all(os.path.exists(p) for p in corrupt + [stale, orphan])

    def test_repair_quarantines_and_cleans(self, tmp_path):
        root = str(tmp_path)
        corrupt, stale, orphan = self.seed_mixed(root)
        report = fsck(root, repair=True)
        assert report["ok"]
        assert not any(os.path.exists(p) for p in corrupt + [stale, orphan])
        assert len(report["quarantine"]) == 2  # both corrupt entries kept
        # The repaired tree scans clean and the valid entries survived.
        clean = fsck(root, repair=False)
        assert clean["ok"] and clean["corrupt_total"] == 0
        assert clean["layers"]["results"]["valid"] == 1
        assert clean["layers"]["artifacts"]["valid"] == 2

    def test_empty_root_is_ok(self, tmp_path):
        report = fsck(str(tmp_path / "nothing-here"))
        assert report["ok"] and report["corrupt_total"] == 0


class TestFsckProperty:
    """ISSUE 6 acceptance: detects 100% of corrupt entries, never flags a
    valid one — over random payloads and random corruptions."""

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(
        payloads=st.lists(
            st.dictionaries(
                st.text(min_size=1, max_size=8),
                st.one_of(st.integers(), st.floats(allow_nan=False),
                          st.text(max_size=16),
                          st.lists(st.integers(), max_size=4)),
                max_size=5,
            ),
            min_size=1, max_size=6,
        ),
        data=st.data(),
    )
    def test_corrupt_detected_valid_untouched(self, payloads, data):
        with tempfile.TemporaryDirectory() as root:
            layer = ResultCache(root)
            for index, payload in enumerate(payloads):
                layer.put({"n": index}, payload)
            entries = layer.entry_paths()
            count = data.draw(st.integers(min_value=0,
                                          max_value=len(entries)))
            seed = data.draw(st.integers(min_value=0, max_value=2**31))
            rng = random.Random(seed)
            victims = sorted(rng.sample(entries, count))
            for victim in victims:
                corrupt_file(victim, rng)
            # A corruption can be semantically neutral — e.g. a bit flip
            # changing the case of a hex digit inside a JSON \uXXXX escape
            # parses to the identical payload, and the checksum over the
            # canonical value rightly still verifies.  The exact property
            # is over *values*: every flagged entry is a victim, and every
            # unflagged victim still serves its original payload bit-exact.
            report = fsck(root)
            flagged = sorted(report["layers"]["results"]["corrupt"]
                             + report["layers"]["results"]["stale"])
            assert set(flagged) <= set(victims)
            payload_by_path = {
                layer._path({"n": index}): payload
                for index, payload in enumerate(payloads)
            }
            neutral = sorted(set(victims) - set(flagged))
            for path in neutral:
                envelope = json.load(open(path))
                assert envelope["value"] == payload_by_path[path]
            assert report["layers"]["results"]["valid"] == (
                len(entries) - len(flagged)
            )
            # Repair never touches a value-intact entry.
            fsck(root, repair=True)
            survivors = layer.entry_paths()
            assert sorted(survivors) == sorted(
                set(entries) - set(flagged)
            )
            for index, payload in enumerate(payloads):
                expected = None if layer._path({"n": index}) not in survivors \
                    else payload
                got = layer.get({"n": index})
                if expected is not None:
                    assert got == expected


# ---------------------------------------------------------------------------
# Concurrency
# ---------------------------------------------------------------------------


def _hammer_put(root, worker_id, rounds, queue):
    """Spawn target: racing writers on the same content-addressed slots."""
    try:
        layer = ResultCache(root)
        for index in range(rounds):
            layer.put({"slot": index % 4},
                      {"worker": worker_id, "round": index, "n": index % 4})
        queue.put(("ok", worker_id))
    except Exception as exc:  # pragma: no cover - failure path
        queue.put(("err", f"{type(exc).__name__}: {exc}"))


class TestConcurrentWriters:
    def test_two_process_put_race_is_silent(self, tmp_path):
        root = str(tmp_path)
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        workers = [ctx.Process(target=_hammer_put,
                               args=(root, wid, 25, queue))
                   for wid in range(2)]
        for proc in workers:
            proc.start()
        outcomes = [queue.get(timeout=60) for _ in workers]
        for proc in workers:
            proc.join(timeout=60)
        assert all(kind == "ok" for kind, _ in outcomes), outcomes
        # Whoever won each slot, every entry is whole and verifiable.
        layer = ResultCache(root)
        assert len(layer.entry_paths()) == 4
        report = fsck(root)
        assert report["ok"] and report["corrupt_total"] == 0
        assert layer.orphan_tmp_paths() == []
        for slot in range(4):
            value = layer.get({"slot": slot})
            assert value is not None and value["n"] == slot

    def test_lost_rename_race_is_silent(self, tmp_path, monkeypatch):
        layer = ResultCache(str(tmp_path))

        def losing_replace(src, dst):
            raise OSError("simulated rename race loss")

        monkeypatch.setattr(cache_mod.os, "replace", losing_replace)
        layer.put({"k": 1}, PAYLOAD)  # must not raise
        monkeypatch.undo()
        assert layer.stats.stores == 0
        assert layer.orphan_tmp_paths() == []  # tmp file cleaned up
        assert layer.get({"k": 1}) is None  # loser's write never landed

    def test_tmp_names_unique_within_process(self, tmp_path):
        layer = ResultCache(str(tmp_path))
        before = cache_mod._DiskCache._tmp_counter
        layer.put({"a": 1}, PAYLOAD)
        layer.put({"a": 2}, PAYLOAD)
        assert cache_mod._DiskCache._tmp_counter == before + 2
