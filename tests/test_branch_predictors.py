"""Branch predictor tests: gshare, TAGE, BTB, RAS."""

from hypothesis import given, strategies as st

from repro.uarch.branch import (
    GsharePredictor,
    TagePredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    make_predictor,
)


class TestGshare:
    def test_learns_always_taken(self):
        predictor = GsharePredictor()
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, True)
        assert predictor.predict(pc) is True

    def test_learns_never_taken(self):
        predictor = GsharePredictor()
        pc = 0x1000
        for _ in range(8):
            predictor.update(pc, False)
        assert predictor.predict(pc) is False

    def test_history_disambiguates_alternating(self):
        """A strict alternation is predictable with global history."""
        predictor = GsharePredictor()
        pc = 0x2000
        outcome = True
        for _ in range(400):
            predictor.update(pc, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            if predictor.predict(pc) == outcome:
                correct += 1
            predictor.update(pc, outcome)
            outcome = not outcome
        assert correct >= 95

    def test_accuracy_counter(self):
        predictor = GsharePredictor()
        for _ in range(10):
            predictor.update(0x100, True)
        assert 0.0 <= predictor.accuracy <= 1.0
        assert predictor.predictions == 10

    @given(st.integers(min_value=0, max_value=2**31), st.booleans())
    def test_update_keeps_counters_in_range(self, pc, taken):
        predictor = GsharePredictor(table_entries=64)
        for _ in range(5):
            predictor.update(pc & ~3, taken)
        assert all(0 <= c <= 3 for c in predictor.table)


class TestTage:
    def test_learns_biased_branch(self):
        predictor = TagePredictor()
        for _ in range(20):
            predictor.update(0x400, True)
        assert predictor.predict(0x400) is True

    def test_beats_gshare_on_long_period_pattern(self):
        """A period-24 pattern exceeds gshare's 10-bit history but fits
        TAGE's longer components — the reason Fig. 14 exists."""
        pattern = [True] * 20 + [False] * 4

        def run(predictor):
            correct = 0
            total = 0
            for round_index in range(160):
                for outcome in pattern:
                    if round_index >= 40:  # after warmup
                        correct += predictor.predict(0x800) == outcome
                        total += 1
                    predictor.update(0x800, outcome)
            return correct / total

        tage_acc = run(TagePredictor())
        gshare_acc = run(GsharePredictor())
        assert tage_acc >= gshare_acc

    def test_allocation_on_mispredict(self):
        predictor = TagePredictor()
        # Drive mispredicts so tagged entries get allocated.
        outcome = True
        for i in range(200):
            predictor.update(0x900 + (i % 4) * 4, outcome)
            outcome = not outcome
        allocated = sum(
            1
            for table in predictor.tables
            for tag in table.tags
            if tag != 0
        )
        assert allocated > 0

    def test_folded_history_width(self):
        predictor = TagePredictor()
        predictor.history = (1 << 200) - 1
        folded = predictor._folded_history(256, 10)
        assert 0 <= folded < 1024

    def test_factory(self):
        assert isinstance(make_predictor("tage"), TagePredictor)
        assert isinstance(make_predictor("gshare"), GsharePredictor)

    def test_factory_rejects_unknown(self):
        import pytest

        with pytest.raises(ValueError):
            make_predictor("oracle")


class TestBTB:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer(entries=16)
        assert btb.predict(0x1000) is None
        btb.update(0x1000, 0x2000)
        assert btb.predict(0x1000) == 0x2000

    def test_aliasing_detected_by_tag(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(0x1000, 0x2000)
        aliased_pc = 0x1000 + 16 * 4  # same index, different tag
        assert btb.predict(aliased_pc) is None

    def test_update_overwrites(self):
        btb = BranchTargetBuffer(entries=16)
        btb.update(0x1000, 0x2000)
        btb.update(0x1000, 0x3000)
        assert btb.predict(0x1000) == 0x3000


class TestRAS:
    def test_lifo_order(self):
        ras = ReturnAddressStack(depth=8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_empty_pop_returns_none(self):
        ras = ReturnAddressStack(depth=4)
        assert ras.pop() is None

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(depth=2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.pop() == 3
        assert ras.pop() == 2
        assert ras.pop() is None  # 1 was dropped

    def test_matched_call_return_nest(self):
        ras = ReturnAddressStack(depth=16)
        addresses = [0x10 * i for i in range(1, 9)]
        for addr in addresses:
            ras.push(addr)
        for addr in reversed(addresses):
            assert ras.pop() == addr
