"""Timing-engine behaviour tests: the architectural effects under study.

These check *directional* properties the paper relies on, using controlled
micro-workloads: dependence chains bound IPC, recovery costs differ between
the rename and RP front ends, structural limits stall, idealized recovery
helps, wider machines help parallel code.
"""

import pytest

from repro.core.api import build, simulate
from repro.core.configs import ss_2way, straight_2way, ss_4way, straight_4way
from repro.uarch.core import OoOCore
from repro.uarch.frontend_models import RenameFrontEnd, StraightFrontEnd


def run_on(source, config, label="STRAIGHT-RE+"):
    binaries = build(source)
    return simulate(binaries.all()[label], config)


SERIAL_CHAIN = """
int g;
int main() {
    int x = g + 1;
    for (int i = 0; i < 200; i++) {
        x = x * 3 + 1;   // serial dependence chain
    }
    __out(x);
    return 0;
}
"""

PARALLEL_SUMS = """
int a[64]; int b[64]; int c[64]; int d[64];
int main() {
    int s0 = 0; int s1 = 0; int s2 = 0; int s3 = 0;
    for (int i = 0; i < 64; i++) {
        s0 += a[i]; s1 += b[i]; s2 += c[i]; s3 += d[i];
    }
    __out(s0 + s1 + s2 + s3);
    return 0;
}
"""

BRANCHY = """
int main() {
    int lcg = 12345;
    int acc = 0;
    for (int i = 0; i < 600; i++) {
        lcg = lcg * 1103515245 + 12345;
        if ((lcg >> 16) & 1) acc += i;      // data-dependent branch
        else acc -= i;
    }
    __out(acc);
    return 0;
}
"""


class TestBasicSanity:
    def test_cycles_positive_and_ipc_bounded(self):
        result = run_on(SERIAL_CHAIN, straight_4way())
        assert result.cycles > 0
        assert 0 < result.stats.ipc <= result.config.issue_width

    def test_all_instructions_commit(self):
        result = run_on(SERIAL_CHAIN, ss_4way(), label="SS")
        assert result.stats.instructions == len(result.interpreter.trace)

    def test_serial_chain_ipc_near_one(self):
        """A multiply chain cannot exceed 1/mul-latency IPC by much."""
        result = run_on(SERIAL_CHAIN, straight_4way())
        # mul latency 3 + dependent add -> long recurrence; generous bound:
        assert result.stats.ipc < 3.0

    def test_parallel_code_beats_serial_ipc(self):
        serial = run_on(SERIAL_CHAIN, straight_4way())
        parallel = run_on(PARALLEL_SUMS, straight_4way())
        assert parallel.stats.ipc > serial.stats.ipc

    def test_wider_machine_helps_parallel_code(self):
        narrow = run_on(PARALLEL_SUMS, straight_2way())
        wide = run_on(PARALLEL_SUMS, straight_4way())
        assert wide.cycles < narrow.cycles


class TestRecoveryEffects:
    def test_branchy_code_mispredicts(self):
        result = run_on(BRANCHY, ss_4way(), label="SS")
        assert result.stats.branch_mispredicts > 50

    def test_ideal_recovery_strictly_helps_ss(self):
        real = run_on(BRANCHY, ss_4way(), label="SS")
        ideal = run_on(BRANCHY, ss_4way(ideal_recovery=True), label="SS")
        assert ideal.cycles < real.cycles

    def test_ss_pays_rob_walk_cycles(self):
        result = run_on(BRANCHY, ss_4way(), label="SS")
        assert result.stats.rob_walk_cycles > 0
        assert result.stats.recovery_stall_cycles > 0

    def test_straight_recovery_is_one_cycle_per_event(self):
        result = run_on(BRANCHY, straight_4way())
        stats = result.stats
        assert stats.rob_walk_cycles == 0
        # one blocked cycle per mispredict, nothing more
        assert stats.recovery_stall_cycles == stats.branch_mispredicts

    def test_recovery_stall_smaller_for_straight(self):
        ss = run_on(BRANCHY, ss_4way(), label="SS")
        st = run_on(BRANCHY, straight_4way())
        per_event_ss = ss.stats.recovery_stall_cycles / max(
            1, ss.stats.branch_mispredicts
        )
        per_event_st = st.stats.recovery_stall_cycles / max(
            1, st.stats.branch_mispredicts
        )
        assert per_event_st < per_event_ss


class TestFrontEndModels:
    def test_model_selection(self):
        assert isinstance(OoOCore(ss_2way()).frontend, RenameFrontEnd)
        assert isinstance(OoOCore(straight_2way()).frontend, StraightFrontEnd)

    def test_rename_counts_rmt_traffic(self):
        result = run_on(SERIAL_CHAIN, ss_2way(), label="SS")
        stats = result.stats
        assert stats.rename_src_reads > 0
        assert stats.rename_writes > 0
        assert stats.opdet_ops == 0

    def test_straight_counts_opdet_only(self):
        result = run_on(SERIAL_CHAIN, straight_2way())
        stats = result.stats
        assert stats.opdet_ops > 0
        assert stats.rename_src_reads == 0
        assert stats.rename_writes == 0

    def test_free_list_stall_under_tiny_register_file(self):
        config = ss_4way(phys_regs=40)  # 8 in-flight registers only
        result = run_on(PARALLEL_SUMS, config, label="SS")
        assert result.stats.freelist_stall_cycles > 0

    def test_straight_never_freelist_stalls(self):
        result = run_on(PARALLEL_SUMS, straight_4way())
        assert result.stats.freelist_stall_cycles == 0


class TestStructuralLimits:
    def test_tiny_rob_stalls(self):
        config = straight_4way(rob_entries=8, phys_regs=40)
        result = run_on(PARALLEL_SUMS, config)
        assert result.stats.rob_full_stalls > 0

    def test_tiny_iq_stalls(self):
        config = straight_4way(iq_entries=4)
        result = run_on(PARALLEL_SUMS, config)
        assert result.stats.iq_full_stalls > 0

    def test_memory_latency_hurts(self):
        fast = run_on(PARALLEL_SUMS, straight_4way(mem_latency=20))
        slow = run_on(PARALLEL_SUMS, straight_4way(mem_latency=400))
        assert slow.cycles > fast.cycles

    def test_shorter_frontend_helps_branchy_code(self):
        deep = run_on(BRANCHY, straight_4way(frontend_depth=12))
        shallow = run_on(BRANCHY, straight_4way(frontend_depth=6))
        assert shallow.cycles < deep.cycles


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        first = run_on(BRANCHY, straight_2way())
        second = run_on(BRANCHY, straight_2way())
        assert first.cycles == second.cycles
