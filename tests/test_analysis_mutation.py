"""Mutation campaign: the static verifier must catch seeded corruption."""

import pytest

from repro.frontend import compile_source
from repro.compiler import compile_to_riscv, compile_to_straight
from repro.compiler.bb_backend import compile_to_bb
from repro.guardrails import DEFAULT_CAMPAIGN_SOURCE
from repro.analysis import (
    cached_mutation_campaign,
    run_bb_mutation_campaign,
    run_campaign_for_isa,
    run_gpr_mutation_campaign,
    run_mutation_campaign,
    verify_program,
)
from repro.analysis.mutation import MutationReport


def campaign_program(max_distance=1023, redundancy_elimination=True):
    return compile_to_straight(
        compile_source(DEFAULT_CAMPAIGN_SOURCE),
        max_distance=max_distance,
        redundancy_elimination=redundancy_elimination,
    ).link()


def riscv_campaign_program():
    return compile_to_riscv(compile_source(DEFAULT_CAMPAIGN_SOURCE)).link()


def bb_campaign_program():
    return compile_to_bb(compile_source(DEFAULT_CAMPAIGN_SOURCE)).link()


class TestMutationCampaign:
    def test_detection_rate_meets_threshold(self):
        report = run_mutation_campaign(
            campaign_program(), mutants=60, seed=20260805
        )
        assert report.total == 60
        assert report.detection_rate >= 0.95, report.text()

    def test_raw_binary_and_tight_bound(self):
        program = campaign_program(
            max_distance=31, redundancy_elimination=False
        )
        report = run_mutation_campaign(program, mutants=40, seed=7)
        assert report.detection_rate >= 0.95, report.text()

    def test_campaign_is_deterministic(self):
        first = run_mutation_campaign(campaign_program(), mutants=20, seed=3)
        second = run_mutation_campaign(campaign_program(), mutants=20, seed=3)
        assert [r["mutation"] for r in first.records] == [
            r["mutation"] for r in second.records
        ]
        assert first.as_dict() == second.as_dict()

    def test_campaign_leaves_program_intact(self):
        program = campaign_program()
        before = [instr.srcs for instr in program.instrs]
        run_mutation_campaign(program, mutants=10, seed=1)
        assert [instr.srcs for instr in program.instrs] == before
        assert not verify_program(program).has_errors()

    def test_dirty_baseline_is_rejected(self):
        program = campaign_program()
        for instr in program.instrs:
            if instr.srcs and instr.srcs[0] > 0:
                instr.srcs = (0,) + instr.srcs[1:]
                break
        with pytest.raises(ValueError, match="clean baseline"):
            run_mutation_campaign(program, mutants=5, seed=1)

    def test_report_shapes(self):
        report = run_mutation_campaign(campaign_program(), mutants=12, seed=9)
        payload = report.as_dict()
        assert payload["total"] == 12
        assert set(payload["by_target"]) <= {
            "off_by_one", "bit_flip", "retarget", "zeroed", "rmov_retarget",
        }
        assert "detection_rate" in payload
        assert "mutants=12" in report.text()
        for record in report.records:
            if record["detected"]:
                assert record["codes"]


class TestGprCampaign:
    def test_riscv_detection_is_total(self):
        report = run_gpr_mutation_campaign(
            riscv_campaign_program(), isa="riscv", mutants=40, seed=20260805
        )
        assert report.isa == "riscv"
        assert report.total == 40
        assert report.detection_rate == 1.0, report.text()

    def test_campaign_is_deterministic(self):
        first = run_gpr_mutation_campaign(
            riscv_campaign_program(), mutants=16, seed=11
        )
        second = run_gpr_mutation_campaign(
            riscv_campaign_program(), mutants=16, seed=11
        )
        assert first.as_dict() == second.as_dict()

    def test_campaign_leaves_program_intact(self):
        program = riscv_campaign_program()
        before = [
            (instr.mnemonic, getattr(instr, "rs1", None),
             getattr(instr, "rs2", None), getattr(instr, "imm", None))
            for instr in program.instrs
        ]
        run_gpr_mutation_campaign(program, mutants=10, seed=1)
        after = [
            (instr.mnemonic, getattr(instr, "rs1", None),
             getattr(instr, "rs2", None), getattr(instr, "imm", None))
            for instr in program.instrs
        ]
        assert after == before


class TestBbCampaign:
    def test_bb_detection_is_total(self):
        report = run_bb_mutation_campaign(
            bb_campaign_program(), mutants=40, seed=20260805
        )
        assert report.isa == "bb"
        assert report.detection_rate == 1.0, report.text()

    def test_campaign_is_deterministic(self):
        first = run_bb_mutation_campaign(
            bb_campaign_program(), mutants=16, seed=5
        )
        second = run_bb_mutation_campaign(
            bb_campaign_program(), mutants=16, seed=5
        )
        assert first.as_dict() == second.as_dict()


class TestCampaignDispatch:
    def test_dispatch_covers_three_isas(self):
        cases = (
            ("straight", campaign_program()),
            ("riscv", riscv_campaign_program()),
            ("bb", bb_campaign_program()),
        )
        for isa, program in cases:
            report = run_campaign_for_isa(isa, program, mutants=8, seed=2)
            assert report.isa == isa
            assert report.total == 8

    def test_dispatch_matches_direct_call(self):
        direct = run_mutation_campaign(
            campaign_program(), mutants=12, seed=20260805
        )
        dispatched = run_campaign_for_isa(
            "straight", campaign_program(), mutants=12, seed=20260805
        )
        assert direct.as_dict() == dispatched.as_dict()


class TestCampaignCache:
    def test_payload_round_trip(self):
        report = run_gpr_mutation_campaign(
            riscv_campaign_program(), mutants=8, seed=3
        )
        clone = MutationReport.from_payload(report.payload())
        assert clone.as_dict() == report.as_dict()
        assert clone.isa == report.isa

    def test_cache_hit_returns_equal_report(self, tmp_path):
        import repro.harness.cache as hc

        previous = hc.swap_state()
        hc.configure(cache_dir=str(tmp_path))
        try:
            first = cached_mutation_campaign(
                "riscv", riscv_campaign_program(), mutants=8, seed=4
            )
            second = cached_mutation_campaign(
                "riscv", riscv_campaign_program(), mutants=8, seed=4
            )
            assert first.as_dict() == second.as_dict()
            cache = hc.result_cache()
            assert cache is not None
            assert cache.stats.hits >= 1 and cache.stats.stores >= 1
        finally:
            hc.swap_state(previous)

    def test_memory_only_mode_still_runs(self):
        report = cached_mutation_campaign(
            "bb", bb_campaign_program(), mutants=6, seed=5
        )
        assert report.total == 6
