"""Mutation campaign: the static verifier must catch seeded corruption."""

import pytest

from repro.frontend import compile_source
from repro.compiler import compile_to_straight
from repro.guardrails import DEFAULT_CAMPAIGN_SOURCE
from repro.analysis import run_mutation_campaign, verify_program


def campaign_program(max_distance=1023, redundancy_elimination=True):
    return compile_to_straight(
        compile_source(DEFAULT_CAMPAIGN_SOURCE),
        max_distance=max_distance,
        redundancy_elimination=redundancy_elimination,
    ).link()


class TestMutationCampaign:
    def test_detection_rate_meets_threshold(self):
        report = run_mutation_campaign(
            campaign_program(), mutants=60, seed=20260805
        )
        assert report.total == 60
        assert report.detection_rate >= 0.95, report.text()

    def test_raw_binary_and_tight_bound(self):
        program = campaign_program(
            max_distance=31, redundancy_elimination=False
        )
        report = run_mutation_campaign(program, mutants=40, seed=7)
        assert report.detection_rate >= 0.95, report.text()

    def test_campaign_is_deterministic(self):
        first = run_mutation_campaign(campaign_program(), mutants=20, seed=3)
        second = run_mutation_campaign(campaign_program(), mutants=20, seed=3)
        assert [r["mutation"] for r in first.records] == [
            r["mutation"] for r in second.records
        ]
        assert first.as_dict() == second.as_dict()

    def test_campaign_leaves_program_intact(self):
        program = campaign_program()
        before = [instr.srcs for instr in program.instrs]
        run_mutation_campaign(program, mutants=10, seed=1)
        assert [instr.srcs for instr in program.instrs] == before
        assert not verify_program(program).has_errors()

    def test_dirty_baseline_is_rejected(self):
        program = campaign_program()
        for instr in program.instrs:
            if instr.srcs and instr.srcs[0] > 0:
                instr.srcs = (0,) + instr.srcs[1:]
                break
        with pytest.raises(ValueError, match="clean baseline"):
            run_mutation_campaign(program, mutants=5, seed=1)

    def test_report_shapes(self):
        report = run_mutation_campaign(campaign_program(), mutants=12, seed=9)
        payload = report.as_dict()
        assert payload["total"] == 12
        assert set(payload["by_target"]) <= {
            "off_by_one", "bit_flip", "retarget", "zeroed", "rmov_retarget",
        }
        assert "detection_rate" in payload
        assert "mutants=12" in report.text()
        for record in report.records:
            if record["detected"]:
                assert record["codes"]
