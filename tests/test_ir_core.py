"""IR construction, builder, and verifier tests."""

import pytest

from repro.common.errors import IRError
from repro.ir import (
    Module,
    IRBuilder,
    ConstantInt,
    verify_module,
    verify_function,
    BINOP_OPCODES,
    ICMP_PREDICATES,
)
from repro.ir.instructions import Phi, Br, Ret


def build_linear_function():
    module = Module("t")
    func = module.add_function("f", ["a", "b"])
    builder = IRBuilder()
    builder.set_insert_point(func.add_block("entry"))
    total = builder.add(func.params[0], func.params[1])
    builder.ret(total)
    return module, func


class TestConstruction:
    def test_module_globals(self):
        module = Module("m")
        var = module.add_global("g", 4, [1, 2])
        assert var.size_words == 4
        assert var.init_words() == [1, 2, 0, 0]

    def test_duplicate_global_rejected(self):
        module = Module("m")
        module.add_global("g", 1)
        with pytest.raises(IRError):
            module.add_global("g", 1)

    def test_duplicate_function_rejected(self):
        module = Module("m")
        module.add_function("f")
        with pytest.raises(IRError):
            module.add_function("f")

    def test_global_initializer_too_long(self):
        module = Module("m")
        with pytest.raises(ValueError):
            module.add_global("g", 1, [1, 2])

    def test_unique_names(self):
        module = Module("m")
        func = module.add_function("f")
        assert func.unique_name("x") == "x"
        assert func.unique_name("x") == "x.1"
        assert func.unique_name("x") == "x.2"

    def test_all_binops_constructible(self):
        module = Module("m")
        func = module.add_function("f", ["a", "b"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        value = func.params[0]
        for op in BINOP_OPCODES:
            value = builder.binop(op, value, func.params[1])
        builder.ret(value)
        verify_module(module)

    def test_all_icmp_predicates_constructible(self):
        module = Module("m")
        func = module.add_function("f", ["a", "b"])
        builder = IRBuilder()
        builder.set_insert_point(func.add_block("entry"))
        for pred in ICMP_PREDICATES:
            builder.icmp(pred, func.params[0], func.params[1])
        builder.ret(ConstantInt(0))
        verify_module(module)

    def test_append_after_terminator_rejected(self):
        module, func = build_linear_function()
        builder = IRBuilder()
        builder.set_insert_point(func.entry)
        with pytest.raises(IRError):
            builder.add(ConstantInt(1), ConstantInt(2))

    def test_phi_inserted_at_head(self):
        module = Module("m")
        func = module.add_function("f")
        block = func.add_block("entry")
        builder = IRBuilder()
        builder.set_insert_point(block)
        builder.add(ConstantInt(1), ConstantInt(2))
        phi = builder.phi()
        assert block.instructions[0] is phi


class TestVerifier:
    def test_valid_function_passes(self):
        module, _ = build_linear_function()
        verify_module(module)

    def test_missing_terminator(self):
        module = Module("m")
        func = module.add_function("f")
        block = func.add_block("entry")
        builder = IRBuilder()
        builder.set_insert_point(block)
        builder.add(ConstantInt(1), ConstantInt(2))
        with pytest.raises(IRError, match="missing terminator"):
            verify_function(func)

    def test_empty_block_rejected(self):
        module = Module("m")
        func = module.add_function("f")
        func.add_block("entry")
        with pytest.raises(IRError, match="empty block"):
            verify_function(func)

    def test_use_before_def_in_block(self):
        module = Module("m")
        func = module.add_function("f")
        block = func.add_block("entry")
        builder = IRBuilder()
        builder.set_insert_point(block)
        first = builder.add(ConstantInt(1), ConstantInt(2))
        second = builder.add(ConstantInt(3), ConstantInt(4))
        builder.ret(first)
        # Swap: make `first` consume `second` which is defined later.
        first.operands[0] = second
        block.instructions = [first, second, block.instructions[-1]]
        with pytest.raises(IRError, match="not dominated"):
            verify_function(func)

    def test_use_not_dominated_across_blocks(self):
        module = Module("m")
        func = module.add_function("f", ["c"])
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.cond_br(func.params[0], left, right)
        builder.set_insert_point(left)
        value = builder.add(ConstantInt(1), ConstantInt(2))
        builder.ret(value)
        builder.set_insert_point(right)
        builder.ret(value)  # not dominated: defined only on the left path
        with pytest.raises(IRError, match="not dominated"):
            verify_function(func)

    def test_phi_incoming_mismatch(self):
        module = Module("m")
        func = module.add_function("f", ["c"])
        entry = func.add_block("entry")
        merge = func.add_block("merge")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.br(merge)
        builder.set_insert_point(merge)
        phi = builder.phi()
        phi.add_incoming(ConstantInt(1), entry)
        phi.add_incoming(ConstantInt(2), merge)  # merge is not a predecessor
        builder.ret(phi)
        with pytest.raises(IRError, match="do not match"):
            verify_function(func)

    def test_branch_to_foreign_block(self):
        module = Module("m")
        f1 = module.add_function("f1")
        f2 = module.add_function("f2")
        foreign = f2.add_block("foreign")
        foreign.append(Ret(ConstantInt(0)))
        entry = f1.add_block("entry")
        entry.append(Br(foreign))
        with pytest.raises(IRError, match="foreign block"):
            verify_function(f1)

    def test_phi_not_at_head(self):
        module = Module("m")
        func = module.add_function("f")
        entry = func.add_block("entry")
        builder = IRBuilder()
        builder.set_insert_point(entry)
        builder.add(ConstantInt(1), ConstantInt(2))
        phi = Phi()
        phi.name = "late"
        entry.insert(1, phi)
        entry.append(Ret(ConstantInt(0)))
        with pytest.raises(IRError, match="not at"):
            verify_function(func)
