"""Guardrail tests: each invariant checker against a hand-built violating
state, the watchdog and lockstep end-to-end, the zero-overhead fast path,
structured errors, crash dumps and the hardened sweep driver."""

import json
import os
import time
from collections import deque

import pytest

from repro import isa as isa_registry
from repro.common.errors import (
    DeadlockError,
    DivergenceError,
    InvariantViolation,
    RunTimeoutError,
    SimulationError,
)
from repro.common.trace import TraceEntry
from repro.core.api import simulate
from repro.core.configs import ss_2way, straight_2way
from repro.guardrails import build_guardrails
from repro.guardrails.checkers import (
    CommitSanityChecker,
    DistanceBoundChecker,
    FreelistChecker,
    OccupancyChecker,
    PredictorStateChecker,
    Watchdog,
    WriteOnceChecker,
)
from repro.guardrails.crashdump import write_crash_dump, write_manifest
from repro.harness.runner import clear_cache, deadline, run_suite, timed_run
from tests.conftest import SMALL_PROGRAM_OUTPUT


# --------------------------------------------------------------- test rigs


def _entry(pc=0x100, op_class="alu", dest=1, src_distances=()):
    return TraceEntry(pc, op_class, "test-op", dest=dest,
                      src_distances=src_distances)


class _FakeRobEntry:
    def __init__(self, seq, entry, done=False):
        self.seq = seq
        self.entry = entry
        self.done = done


class _FakeLsq:
    def __init__(self, load_entries=8, store_entries=8):
        self.loads = []
        self.stores = []
        self.load_entries = load_entries
        self.store_entries = store_entries


class _FakePredictor:
    def __init__(self, table, history=0, history_mask=0xFF):
        self.table = table
        self.history = history
        self.history_mask = history_mask


class _FakeFrontend:
    def __init__(self, free_regs):
        self.free_regs = free_regs


class _FakeCore:
    def __init__(self, predictor=None, frontend=None):
        self.predictor = predictor
        self.frontend = frontend


class _FakeView:
    """Duck-typed GuardView: just enough state for the checker hooks."""

    def __init__(self, config, core=None):
        self.config = config
        self.core = core or _FakeCore()
        self.trace = []
        self.rob = deque()
        self.rob_by_seq = {}
        self.pipe = deque()
        self.reg_ready = {}
        self.lsq = _FakeLsq()
        self.cycle = 0
        self.committed = 0
        self.iq_count = 0
        self.fetch_idx = 0

    def occupancy(self):
        return {"cycle": self.cycle, "rob": len(self.rob),
                "iq": self.iq_count, "committed": self.committed}

    def head_pc(self):
        return self.rob[0].entry.pc if self.rob else None

    def add_rob(self, seq, entry=None, done=False):
        rob_entry = _FakeRobEntry(seq, entry or _entry(), done)
        self.rob.append(rob_entry)
        self.rob_by_seq[seq] = rob_entry
        return rob_entry


# ------------------------------------------------------------ unit checkers


class TestWriteOnceChecker:
    def test_double_claim_of_one_rp_slot(self):
        checker = WriteOnceChecker(max_rp=64)
        view = _FakeView(straight_2way())
        checker.on_dispatch(view, 5, _entry(), cycle=10)
        with pytest.raises(InvariantViolation) as info:
            checker.on_dispatch(view, 5 + 64, _entry(), cycle=12)
        assert "write-once" in str(info.value)
        assert info.value.context["reg"] == 5
        assert info.value.cycle == 12

    def test_commit_returns_wrong_owner(self):
        checker = WriteOnceChecker(max_rp=64)
        view = _FakeView(straight_2way())
        checker.on_dispatch(view, 7, _entry(), cycle=1)
        # Commit a seq mapping to the same slot that never dispatched.
        with pytest.raises(InvariantViolation, match="accounting mismatch"):
            checker.on_commit(view, _FakeRobEntry(7 + 64, _entry()), cycle=2)

    def test_clean_dispatch_commit_cycle(self):
        checker = WriteOnceChecker(max_rp=64)
        view = _FakeView(straight_2way())
        for seq in range(200):  # wraps the RP space three times
            checker.on_dispatch(view, seq, _entry(), cycle=seq)
            checker.on_commit(view, _FakeRobEntry(seq, _entry()), cycle=seq)
        assert not checker.inflight


class TestDistanceBoundChecker:
    def test_distance_over_bound(self):
        checker = DistanceBoundChecker(max_distance=31)
        view = _FakeView(straight_2way())
        entry = _entry(src_distances=(3, 32))
        with pytest.raises(InvariantViolation) as info:
            checker.on_dispatch(view, 1, entry, cycle=4)
        assert info.value.context["distance"] == 32

    def test_distance_at_bound_passes(self):
        checker = DistanceBoundChecker(max_distance=31)
        view = _FakeView(straight_2way())
        checker.on_dispatch(view, 1, _entry(src_distances=(31, 1)), cycle=4)


class TestFreelistChecker:
    def test_leak_detected(self):
        config = ss_2way()
        checker = FreelistChecker(interval=1)
        view = _FakeView(config)
        view.core = _FakeCore(frontend=_FakeFrontend(config.phys_regs - 32))
        view.add_rob(0, _entry(dest=3))  # an in-flight dest nothing freed for
        with pytest.raises(InvariantViolation, match="free-list leak"):
            checker.on_cycle(view)

    def test_out_of_range_free_count(self):
        config = ss_2way()
        checker = FreelistChecker(interval=1)
        view = _FakeView(config)
        view.core = _FakeCore(frontend=_FakeFrontend(config.phys_regs))
        with pytest.raises(InvariantViolation, match="out of range"):
            checker.on_cycle(view)

    def test_balanced_state_passes(self):
        config = ss_2way()
        checker = FreelistChecker(interval=1)
        view = _FakeView(config)
        view.core = _FakeCore(frontend=_FakeFrontend(config.phys_regs - 33))
        view.add_rob(0, _entry(dest=3))
        checker.on_cycle(view)


class TestOccupancyChecker:
    def test_rob_overflow(self):
        config = straight_2way()
        checker = OccupancyChecker(deep_interval=1 << 30)
        view = _FakeView(config)
        view.cycle = 1  # keep the deep scan quiet; bound check must fire
        for seq in range(config.rob_entries + 1):
            view.add_rob(seq)
        with pytest.raises(InvariantViolation, match="ROB occupancy"):
            checker.on_cycle(view)

    def test_index_size_mismatch(self):
        checker = OccupancyChecker(deep_interval=1 << 30)
        view = _FakeView(straight_2way())
        view.cycle = 1
        view.add_rob(0)
        view.rob_by_seq[99] = object()  # stale index entry
        with pytest.raises(InvariantViolation, match="ROB index"):
            checker.on_cycle(view)

    def test_deep_scan_catches_reordered_seqs(self):
        checker = OccupancyChecker(deep_interval=1)
        view = _FakeView(straight_2way())
        view.add_rob(5)
        view.add_rob(3)  # out of order: seq must be monotone along the ROB
        with pytest.raises(InvariantViolation, match="order corrupted"):
            checker.on_cycle(view)

    def test_deep_scan_catches_index_aliasing(self):
        checker = OccupancyChecker(deep_interval=1)
        view = _FakeView(straight_2way())
        a = view.add_rob(1)
        view.add_rob(2)
        view.rob_by_seq[2] = a  # index points at the wrong entry object
        with pytest.raises(InvariantViolation, match="index inconsistent"):
            checker.on_cycle(view)


class TestCommitSanityChecker:
    def test_commit_without_done_flag(self):
        checker = CommitSanityChecker()
        view = _FakeView(straight_2way())
        rob_entry = view.add_rob(0, done=False)
        with pytest.raises(InvariantViolation, match="without done flag"):
            checker.on_commit(view, rob_entry, cycle=9)

    def test_commit_before_completion_event(self):
        checker = CommitSanityChecker()
        view = _FakeView(straight_2way())
        rob_entry = view.add_rob(0, done=True)
        view.reg_ready[0] = 50  # completes in the future
        with pytest.raises(InvariantViolation) as info:
            checker.on_commit(view, rob_entry, cycle=9)
        assert info.value.context["ready"] == 50

    def test_commit_never_issued(self):
        checker = CommitSanityChecker()
        view = _FakeView(straight_2way())
        rob_entry = view.add_rob(0, done=True)  # no reg_ready record at all
        with pytest.raises(InvariantViolation, match="completion is recorded"):
            checker.on_commit(view, rob_entry, cycle=9)

    def test_clean_commit_passes(self):
        checker = CommitSanityChecker()
        view = _FakeView(straight_2way())
        rob_entry = view.add_rob(0, done=True)
        view.reg_ready[0] = 5
        checker.on_commit(view, rob_entry, cycle=9)


class TestPredictorStateChecker:
    def test_gshare_counter_out_of_range(self):
        checker = PredictorStateChecker(interval=1)
        view = _FakeView(straight_2way())
        view.core = _FakeCore(predictor=_FakePredictor([1, 2, 5, 0]))
        with pytest.raises(InvariantViolation, match="counter"):
            checker.on_cycle(view)

    def test_gshare_history_exceeds_mask(self):
        checker = PredictorStateChecker(interval=1)
        view = _FakeView(straight_2way())
        view.core = _FakeCore(
            predictor=_FakePredictor([1, 2], history=0x100, history_mask=0xFF)
        )
        with pytest.raises(InvariantViolation, match="history"):
            checker.on_cycle(view)

    def test_clean_gshare_passes(self):
        checker = PredictorStateChecker(interval=1)
        view = _FakeView(straight_2way())
        view.core = _FakeCore(predictor=_FakePredictor([0, 1, 2, 3]))
        checker.on_cycle(view)


class TestWatchdog:
    def test_trips_after_limit_without_commits(self):
        watchdog = Watchdog(limit=100)
        view = _FakeView(straight_2way())
        view.trace = [None] * 10
        watchdog.begin_run(view, view.config)
        view.cycle = 100
        watchdog.on_cycle(view)  # exactly at the limit: still fine
        view.cycle = 101
        with pytest.raises(DeadlockError) as info:
            watchdog.on_cycle(view)
        assert info.value.occupancy  # carries the snapshot
        assert info.value.context["last_commit_cycle"] == 0

    def test_commit_resets_the_clock(self):
        watchdog = Watchdog(limit=100)
        view = _FakeView(straight_2way())
        watchdog.begin_run(view, view.config)
        view.cycle = 90
        view.committed = 1
        watchdog.on_cycle(view)
        view.cycle = 190  # only 100 cycles since the last commit
        watchdog.on_cycle(view)


# ------------------------------------------------------- integration layer


class TestEndToEnd:
    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_clean_guarded_runs_every_isa(self, small_build, isa_name):
        """Lockstep co-sim holds for every registered ISA's default binary."""
        descriptor = isa_registry.get(isa_name)
        binary = small_build.all()[descriptor.default_label]
        config = descriptor.config_factories["2way"]()
        result = simulate(binary, config, warm_caches=True, guardrails=True)
        assert result.output == SMALL_PROGRAM_OUTPUT
        report = result.guardrail_report
        assert report["commits_checked"] > 0
        assert report["lockstep"]["golden_halted"]
        assert report["lockstep"]["commits_compared"] == report[
            "commits_checked"
        ]

    @pytest.mark.parametrize("isa_name", isa_registry.names())
    def test_guardrails_do_not_change_cycle_counts(self, small_build,
                                                   isa_name):
        """Acceptance: the guarded run reproduces seed cycle counts exactly."""
        descriptor = isa_registry.get(isa_name)
        binary = small_build.all()[descriptor.default_label]
        config = descriptor.config_factories["2way"]()
        plain = simulate(binary, config, warm_caches=True)
        guarded = simulate(binary, config, warm_caches=True, guardrails=True)
        assert guarded.cycles == plain.cycles
        assert guarded.output == plain.output

    def test_lockstep_catches_corrupted_commit_value(self, small_build):
        """A deliberately corrupted architectural result must diverge."""
        binary = small_build.straight_re
        interp = binary.interpreter(collect_trace=True)
        assert interp.run(2_000_000).status == "halt"
        victims = [e for e in interp.trace if e.op_class == "alu"]
        victims[len(victims) // 2].dest_value ^= 1 << 7

        from repro.uarch.core import OoOCore

        config = straight_2way()
        suite = build_guardrails(config, binary=binary)
        with pytest.raises(DivergenceError) as info:
            OoOCore(config, guardrails=suite).run(interp.trace)
        err = info.value
        assert err.context["field"] == "dest_value"
        assert err.context["expected"] != err.context["observed"]
        assert err.context["commit_window"]  # replayable window attached

    def test_lockstep_catches_corrupted_control_flow(self, small_build):
        binary = small_build.riscv
        interp = binary.interpreter(collect_trace=True)
        assert interp.run(2_000_000).status in ("halt", "exit")
        victim = interp.trace[len(interp.trace) // 2]
        victim.pc ^= 0x40

        from repro.uarch.core import OoOCore

        config = ss_2way()
        suite = build_guardrails(config, binary=binary)
        with pytest.raises(DivergenceError) as info:
            OoOCore(config, guardrails=suite).run(interp.trace)
        assert info.value.context["field"] in ("pc", "next_pc")

    def test_watchdog_trips_on_wedged_rob(self, small_build):
        """Clearing a completed done flag wedges the head; watchdog fires."""
        from repro.guardrails.faultinject import FaultSpec, TimingFaultInjector
        from repro.uarch.core import OoOCore

        binary = small_build.straight_re
        interp = binary.interpreter(collect_trace=True)
        assert interp.run(2_000_000).status == "halt"
        config = straight_2way(watchdog_cycles=500)
        suite = build_guardrails(
            config, binary=binary,
            injector=TimingFaultInjector(FaultSpec("rob_done_clear", cycle=40)),
        )
        with pytest.raises(DeadlockError) as info:
            OoOCore(config, guardrails=suite).run(interp.trace)
        assert info.value.occupancy["rob"] > 0


# ----------------------------------------------------- errors + crash dumps


class TestStructuredErrors:
    def test_plain_message_is_backward_compatible(self):
        err = SimulationError("boom")
        assert str(err) == "boom"
        assert err.cycle is None and err.context == {}

    def test_context_rendered_in_str(self):
        err = SimulationError("boom", cycle=42, pc=0x1F4,
                              occupancy={"rob": 3, "iq": 1})
        text = str(err)
        assert "boom" in text
        assert "cycle=42" in text
        assert "pc=0x1f4" in text
        assert "rob=3" in text

    def test_as_dict_round_trips_through_json(self):
        err = DeadlockError("wedged", cycle=7, occupancy={"rob": 2},
                            context={"checker": "watchdog"})
        payload = json.loads(json.dumps(err.as_dict()))
        assert payload["type"] == "DeadlockError"
        assert payload["cycle"] == 7
        assert payload["context"]["checker"] == "watchdog"

    def test_guardrail_errors_are_simulation_errors(self):
        for cls in (InvariantViolation, DeadlockError, DivergenceError):
            assert issubclass(cls, SimulationError)


class TestCrashDumps:
    def test_write_crash_dump(self, tmp_path):
        err = InvariantViolation("bad state", cycle=3,
                                 context={"checker": "occupancy"})
        path = write_crash_dump(tmp_path, "fig11", err,
                                extra={"experiment": "fig11"})
        payload = json.loads(open(path).read())
        assert payload["error"]["type"] == "InvariantViolation"
        assert payload["error"]["cycle"] == 3
        assert payload["extra"]["experiment"] == "fig11"

    def test_write_crash_dump_plain_exception(self, tmp_path):
        path = write_crash_dump(tmp_path, "x", ValueError("nope"))
        payload = json.loads(open(path).read())
        assert payload["error"]["type"] == "ValueError"
        assert "nope" in payload["error"]["message"]

    def test_write_manifest(self, tmp_path):
        path = write_manifest(tmp_path, {"failed": ["fig12"]})
        assert json.loads(open(path).read())["failed"] == ["fig12"]


class TestCrashDumpRotation:
    def fill(self, directory, count, max_dumps=None):
        paths = []
        for index in range(count):
            path = write_crash_dump(directory, f"task{index}",
                                    ValueError(f"boom {index}"),
                                    max_dumps=max_dumps)
            os.utime(path, (index, index))  # deterministic age ordering
            paths.append(path)
        return paths

    def test_cap_keeps_newest(self, tmp_path):
        import glob

        self.fill(tmp_path, 6, max_dumps=3)
        dumps = sorted(glob.glob(str(tmp_path / "crash-*.json")))
        assert len(dumps) == 3
        names = " ".join(os.path.basename(p) for p in dumps)
        # The three most recent survive; the oldest were rotated out.
        for kept in ("task3", "task4", "task5"):
            assert kept in names
        for evicted in ("task0", "task1", "task2"):
            assert evicted not in names

    def test_default_cap_via_configure(self, tmp_path):
        from repro.guardrails import crashdump

        previous = crashdump.configure_rotation(2)
        try:
            self.fill(tmp_path, 4)  # no per-call override: global cap
        finally:
            crashdump.configure_rotation(previous)
        import glob

        assert len(glob.glob(str(tmp_path / "crash-*.json"))) == 2

    def test_configure_rejects_nonpositive(self):
        from repro.guardrails import crashdump

        with pytest.raises(ValueError):
            crashdump.configure_rotation(0)

    def test_under_cap_untouched(self, tmp_path):
        import glob

        self.fill(tmp_path, 2, max_dumps=5)
        assert len(glob.glob(str(tmp_path / "crash-*.json"))) == 2


# ------------------------------------------------------- hardened harness


class TestHardenedHarness:
    def test_deadline_raises_on_timeout(self):
        with pytest.raises(RunTimeoutError, match="wall-clock"):
            with deadline(0.05, "tiny budget"):
                time.sleep(2)

    def test_deadline_noop_when_disabled(self):
        with deadline(None):
            pass
        with deadline(0):
            pass

    def test_run_suite_degrades_to_partial_results(self, tmp_path,
                                                   monkeypatch):
        from repro.harness import experiments

        def boom():
            raise InvariantViolation("synthetic failure", cycle=11)

        registry = {"ok": lambda: {"text": "fine", "rows": []}, "bad": boom}
        monkeypatch.setattr(experiments, "ALL_EXPERIMENTS", registry)
        outcome = run_suite(["ok", "bad"], diagnostics_dir=tmp_path)
        assert set(outcome["results"]) == {"ok"}
        manifest = outcome["manifest"]
        assert manifest["failed"] == ["bad"]
        (error,) = manifest["errors"]
        assert error["type"] == "InvariantViolation"
        dump = json.loads(open(error["crash_dump"]).read())
        assert dump["error"]["cycle"] == 11
        persisted = json.loads(open(manifest["manifest_path"]).read())
        assert persisted["failed"] == ["bad"]

    def test_run_suite_unknown_experiment(self):
        outcome = run_suite(["does-not-exist"])
        assert outcome["results"] == {}
        assert outcome["manifest"]["failed"] == ["does-not-exist"]

    def test_run_suite_raise_on_error(self, monkeypatch):
        from repro.harness import experiments

        def boom():
            raise ValueError("surface me")

        monkeypatch.setattr(experiments, "ALL_EXPERIMENTS", {"bad": boom})
        with pytest.raises(ValueError, match="surface me"):
            run_suite(["bad"], raise_on_error=True)


class TestRunnerCacheKey:
    def test_same_name_different_structure_do_not_alias(self):
        """The memo key is the config's structural identity, not its name."""
        clear_cache()
        try:
            small = timed_run("dhrystone", "STRAIGHT-RE+",
                              straight_2way(rob_entries=32))
            large = timed_run("dhrystone", "STRAIGHT-RE+",
                              straight_2way(rob_entries=128))
            assert small is not large
            assert small.cycles != large.cycles
        finally:
            clear_cache()

    def test_guarded_and_unguarded_never_share_an_entry(self):
        clear_cache()
        try:
            plain = timed_run("dhrystone", "STRAIGHT-RE+", straight_2way())
            guarded = timed_run("dhrystone", "STRAIGHT-RE+", straight_2way(),
                                guardrails=True)
            assert plain is not guarded
            assert plain.cycles == guarded.cycles  # zero-overhead fast path
        finally:
            clear_cache()
