"""Dominance, liveness, loop, and CFG-order analysis tests."""

from repro.ir import Module, IRBuilder, ConstantInt
from repro.ir.analysis.cfg import reverse_postorder, reachable_blocks
from repro.ir.analysis.dominance import DominatorTree
from repro.ir.analysis.liveness import compute_liveness
from repro.ir.analysis.loops import find_natural_loops


def build_diamond():
    """entry -> (left|right) -> merge, with a phi at the merge."""
    module = Module("m")
    func = module.add_function("f", ["c", "x", "y"])
    entry = func.add_block("entry")
    left = func.add_block("left")
    right = func.add_block("right")
    merge = func.add_block("merge")
    builder = IRBuilder()
    builder.set_insert_point(entry)
    builder.cond_br(func.params[0], left, right)
    builder.set_insert_point(left)
    lval = builder.add(func.params[1], ConstantInt(1))
    builder.br(merge)
    builder.set_insert_point(right)
    rval = builder.add(func.params[2], ConstantInt(2))
    builder.br(merge)
    builder.set_insert_point(merge)
    phi = builder.phi()
    phi.add_incoming(lval, left)
    phi.add_incoming(rval, right)
    builder.ret(phi)
    return func, (entry, left, right, merge), (lval, rval, phi)


def build_loop():
    """entry -> header <-> body, header -> exit."""
    module = Module("m")
    func = module.add_function("f", ["n"])
    entry = func.add_block("entry")
    header = func.add_block("header")
    body = func.add_block("body")
    exit_block = func.add_block("exit")
    builder = IRBuilder()
    builder.set_insert_point(entry)
    builder.br(header)
    builder.set_insert_point(header)
    phi = builder.phi()
    cond = builder.icmp("slt", phi, func.params[0])
    builder.cond_br(cond, body, exit_block)
    builder.set_insert_point(body)
    step = builder.add(phi, ConstantInt(1))
    builder.br(header)
    phi.add_incoming(ConstantInt(0), entry)
    phi.add_incoming(step, body)
    builder.set_insert_point(exit_block)
    builder.ret(phi)
    return func, (entry, header, body, exit_block)


class TestDominance:
    def test_diamond_idoms(self):
        func, (entry, left, right, merge), _ = build_diamond()
        dom = DominatorTree(func)
        assert dom.idom[left] is entry
        assert dom.idom[right] is entry
        assert dom.idom[merge] is entry

    def test_dominates_reflexive_and_entry(self):
        func, blocks, _ = build_diamond()
        dom = DominatorTree(func)
        for block in blocks:
            assert dom.dominates(block, block)
            assert dom.dominates(blocks[0], block)

    def test_siblings_do_not_dominate(self):
        func, (entry, left, right, merge), _ = build_diamond()
        dom = DominatorTree(func)
        assert not dom.dominates(left, right)
        assert not dom.dominates(left, merge)
        assert not dom.strictly_dominates(merge, merge)

    def test_diamond_frontiers(self):
        func, (entry, left, right, merge), _ = build_diamond()
        dom = DominatorTree(func)
        assert dom.frontier[left] == {merge}
        assert dom.frontier[right] == {merge}
        assert dom.frontier[entry] == set()

    def test_loop_frontier_contains_header(self):
        func, (entry, header, body, exit_block) = build_loop()
        dom = DominatorTree(func)
        assert header in dom.frontier[body]
        assert header in dom.frontier[header]  # header is in its own DF

    def test_dom_tree_preorder_starts_at_entry(self):
        func, blocks, _ = build_diamond()
        dom = DominatorTree(func)
        order = dom.dom_tree_preorder()
        assert order[0] is blocks[0]
        assert set(order) == set(blocks)


class TestCfgOrders:
    def test_rpo_entry_first(self):
        func, blocks, _ = build_diamond()
        order = reverse_postorder(func)
        assert order[0] is blocks[0]
        assert set(order) == set(blocks)
        # merge must come after both its predecessors
        assert order.index(blocks[3]) > order.index(blocks[1])
        assert order.index(blocks[3]) > order.index(blocks[2])

    def test_reachable_excludes_orphans(self):
        func, blocks, _ = build_diamond()
        orphan = func.add_block("orphan")
        builder = IRBuilder()
        builder.set_insert_point(orphan)
        builder.ret(ConstantInt(0))
        assert orphan not in reachable_blocks(func)


class TestLiveness:
    def test_phi_operands_live_out_of_preds(self):
        func, (entry, left, right, merge), (lval, rval, phi) = build_diamond()
        liveness = compute_liveness(func)
        assert lval in liveness.live_out[left]
        assert rval in liveness.live_out[right]
        assert lval not in liveness.live_out[right]

    def test_phi_result_not_live_into_merge(self):
        func, blocks, (lval, rval, phi) = build_diamond()
        liveness = compute_liveness(func)
        assert phi not in liveness.live_in[blocks[3]]

    def test_loop_carried_value_live_around_loop(self):
        func, (entry, header, body, exit_block) = build_loop()
        liveness = compute_liveness(func)
        phi = header.phis()[0]
        step = body.instructions[0]
        assert step in liveness.live_out[body]
        assert phi in liveness.live_in[body]
        # phi is live out of the header toward the exit use too
        assert phi in liveness.live_out[header]

    def test_arguments_tracked(self):
        func, (entry, header, body, exit_block) = build_loop()
        liveness = compute_liveness(func)
        n = func.params[0]
        assert n in liveness.live_in[header]

    def test_live_across_edge_substitutes_phi_incomings(self):
        func, (entry, left, right, merge), (lval, rval, phi) = build_diamond()
        liveness = compute_liveness(func)
        across = liveness.live_across_edge(left, merge)
        assert lval in across
        assert phi not in across


class TestLoops:
    def test_finds_single_loop(self):
        func, (entry, header, body, exit_block) = build_loop()
        loops = find_natural_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header is header
        assert loop.body == {header, body}

    def test_loop_exits(self):
        func, (entry, header, body, exit_block) = build_loop()
        loop = find_natural_loops(func)[0]
        assert loop.exits() == {exit_block}

    def test_no_loops_in_diamond(self):
        func, _, _ = build_diamond()
        assert find_natural_loops(func) == []
