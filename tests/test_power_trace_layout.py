"""Small-module coverage: trace entries, layout, data layout, reporting."""

import pytest

from repro.common.trace import TraceEntry, OP_CLASSES
from repro.common.layout import TEXT_BASE, DATA_BASE, STACK_TOP, WORD_BYTES
from repro.compiler.data_layout import DataLayout
from repro.frontend import compile_source
from repro.power.energy_model import EnergyParams, ModulePower, PowerReport


class TestTraceEntry:
    def test_changes_flow_classification(self):
        branch = TraceEntry(0, "branch", "BEZ")
        jump = TraceEntry(0, "jump", "J")
        alu = TraceEntry(0, "alu", "ADD")
        assert branch.changes_flow() and jump.changes_flow()
        assert not alu.changes_flow()

    def test_none_sources_dropped(self):
        entry = TraceEntry(0, "alu", "ADD", srcs=(None, 3, None, 5))
        assert entry.srcs == (3, 5)

    def test_op_classes_closed_set(self):
        assert set(OP_CLASSES) >= {"alu", "load", "store", "branch", "jump"}

    def test_repr_contains_pc(self):
        entry = TraceEntry(0x1234, "alu", "ADD", dest=7)
        assert "0x1234" in repr(entry)


class TestLayoutConstants:
    def test_segments_disjoint_and_ordered(self):
        assert TEXT_BASE < DATA_BASE < STACK_TOP
        assert TEXT_BASE % WORD_BYTES == 0
        assert DATA_BASE % WORD_BYTES == 0
        assert STACK_TOP % WORD_BYTES == 0


class TestDataLayout:
    def test_addresses_are_contiguous(self):
        module = compile_source(
            "int a; int b[3]; int c = 9; int main() { return a + b[0] + c; }"
        )
        layout = DataLayout(module)
        assert layout.address_of("a") == DATA_BASE
        assert layout.address_of("b") == DATA_BASE + 4
        assert layout.address_of("c") == DATA_BASE + 16
        assert layout.size_words == 5

    def test_data_words_match_initializers(self):
        module = compile_source(
            "int a = 7; int b[3] = {1, 2}; int main() { return 0; }"
        )
        layout = DataLayout(module)
        assert layout.data_words() == [7, 1, 2, 0]


class TestPowerPlumbing:
    def test_voltage_scaling_monotone(self):
        params = EnergyParams()
        assert params.voltage(1.0) == 1.0
        assert params.voltage(4.0) > params.voltage(2.5) > params.voltage(1.0)

    def test_module_power_total(self):
        module = ModulePower("m", dynamic=2.0, leakage=0.5)
        assert module.total == 2.5

    def test_report_total_sums_modules(self):
        report = PowerReport(
            "core",
            1.0,
            {
                "rename": ModulePower("rename", 1.0, 0.1),
                "regfile": ModulePower("regfile", 2.0, 0.2),
                "other": ModulePower("other", 3.0, 0.3),
            },
        )
        assert report.total() == pytest.approx(6.6)
        assert "core" in repr(report)
