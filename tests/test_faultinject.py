"""Fault-injection tests: single-fault detection paths plus the full seeded
campaign the acceptance criterion specifies (>=100 faults, >=90% detected,
zero silent escapes)."""

import pytest

from repro.common.errors import GuardrailError, ReproError
from repro.core.api import build
from repro.core.configs import straight_2way
from repro.guardrails import build_guardrails
from repro.guardrails.faultinject import (
    DEFAULT_CAMPAIGN_SOURCE,
    DEFAULT_MIX,
    CampaignReport,
    FaultSpec,
    TimingFaultInjector,
    run_campaign,
    run_functional_with_fault,
)


@pytest.fixture(scope="module")
def campaign_binary():
    return build(DEFAULT_CAMPAIGN_SOURCE).straight_re


class TestFaultSpec:
    def test_functional_targets(self):
        assert FaultSpec("regfile", step=10).is_functional()
        assert FaultSpec("written_seq", step=10).is_functional()
        assert not FaultSpec("rob_seq", cycle=10).is_functional()

    def test_as_dict_is_json_shaped(self):
        spec = FaultSpec("predictor", cycle=5, bit=3, index=17)
        payload = spec.as_dict()
        assert payload == {"target": "predictor", "step": None, "cycle": 5,
                           "bit": 3, "index": 17}


class TestSingleFaults:
    def _trace_for(self, binary, spec=None, max_steps=2_000_000):
        if spec is None:
            interp = binary.interpreter(collect_trace=True)
            assert interp.run(max_steps).status == "halt"
            return interp
        interp, status, event = run_functional_with_fault(
            binary, spec, max_steps=max_steps
        )
        assert event is not None, "fault never injected"
        return interp

    def test_regfile_flip_caught_by_lockstep(self, campaign_binary):
        """A live register-value flip diverges from the golden machine."""
        interp = self._trace_for(campaign_binary,
                                 FaultSpec("regfile", step=400, bit=5))
        config = straight_2way(guardrails=True)
        suite = build_guardrails(config, binary=campaign_binary)
        from repro.uarch.core import OoOCore

        with pytest.raises((GuardrailError, ReproError)):
            OoOCore(config, guardrails=suite).run(interp.trace)
            suite.finish(interp.output)

    def test_written_seq_flip_caught_by_distance_validation(
            self, campaign_binary):
        """Corrupt RP bookkeeping trips the ISS's stale-operand check."""
        with pytest.raises(ReproError):
            interp, status, event = run_functional_with_fault(
                campaign_binary, FaultSpec("written_seq", step=400, bit=3)
            )
            assert status == "halt"
            config = straight_2way(guardrails=True)
            suite = build_guardrails(config, binary=campaign_binary)
            from repro.uarch.core import OoOCore

            OoOCore(config, guardrails=suite).run(interp.trace)
            suite.finish(interp.output)

    def test_predictor_flip_caught_by_state_sweep(self, campaign_binary):
        interp = self._trace_for(campaign_binary)
        config = straight_2way(guardrails=True, predictor_check_interval=256)
        suite = build_guardrails(
            config, binary=campaign_binary,
            injector=TimingFaultInjector(
                FaultSpec("predictor", cycle=100, bit=1, index=9)
            ),
        )
        from repro.uarch.core import OoOCore

        with pytest.raises(GuardrailError, match="counter"):
            OoOCore(config, guardrails=suite).run(interp.trace)
            suite.finish(interp.output)

    def test_rob_seq_flip_caught(self, campaign_binary):
        interp = self._trace_for(campaign_binary)
        config = straight_2way(guardrails=True, deep_check_interval=8)
        suite = build_guardrails(
            config, binary=campaign_binary,
            injector=TimingFaultInjector(FaultSpec("rob_seq", cycle=200,
                                                   bit=2), seed=1),
        )
        from repro.uarch.core import OoOCore

        with pytest.raises((GuardrailError, KeyError, IndexError)):
            OoOCore(config, guardrails=suite).run(interp.trace)
            suite.finish(interp.output)


class TestCampaign:
    def test_acceptance_campaign(self):
        """>=100 seeded faults: >=90% detected, zero silent escapes."""
        report = run_campaign(n_faults=100, seed=20260805)
        assert report.total == 100
        assert report.escaped_silent == 0, report.text()
        assert report.detection_rate >= 0.90, report.text()
        # Every configured fault class was actually exercised.
        assert set(report.by_target) == {name for name, _ in DEFAULT_MIX}

    def test_report_shape(self):
        records = [
            {"target": "regfile", "outcome": "detected"},
            {"target": "regfile", "outcome": "escaped_benign"},
            {"target": "rob_seq", "outcome": "escaped_silent"},
        ]
        report = CampaignReport(7, records)
        assert report.detected == 1
        assert report.escaped_benign == 1
        assert report.escaped_silent == 1
        assert report.detection_rate == pytest.approx(1 / 3)
        # Silent escapes count against harmful detection, benign ones do not.
        assert report.harmful_detection_rate == pytest.approx(1 / 2)
        payload = report.as_dict()
        assert payload["by_target"]["rob_seq"]["escaped_silent"] == 1
        assert "SILENT" in report.text()
