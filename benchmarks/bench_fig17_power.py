"""Fig. 17: relative per-module power at 1.0x / 2.5x / 4.0x clock targets.

Paper (2-way RTL, Cadence Joules): the rename-logic power is almost removed
in STRAIGHT (operand determination is a few adders); register-file power is
up to 18% higher and other modules up to 5% higher (STRAIGHT's higher IPC);
every module's power grows super-linearly with the synthesis frequency
target; the renaming power share grows with frequency.
"""

from repro.harness import fig17_power


def test_fig17_power(regenerate):
    result = regenerate(fig17_power)
    power = {
        (r["module"], r["clock"], r["arch"]): r["relative_power"]
        for r in result["rows"]
    }

    # Rename power is almost removed at every clock target.
    for clock in ("1.0x", "2.5x", "4.0x"):
        assert power[("rename", clock, "STRAIGHT")] < 0.2 * power[
            ("rename", clock, "SS")
        ]

    # Register file: STRAIGHT slightly higher, within the paper's <=18%-ish.
    regfile_ratio = power[("regfile", "1.0x", "STRAIGHT")] / power[
        ("regfile", "1.0x", "SS")
    ]
    assert 0.90 <= regfile_ratio <= 1.30

    # Other modules: under ~5-10% increase.
    other_ratio = power[("other", "1.0x", "STRAIGHT")] / power[
        ("other", "1.0x", "SS")
    ]
    assert 0.85 <= other_ratio <= 1.15

    # Super-linear frequency scaling (V^2 f): 4.0x costs far more than 4x.
    for module in ("rename", "regfile", "other"):
        assert power[(module, "4.0x", "SS")] > 4.0 * power[(module, "1.0x", "SS")]

    # The renaming power *share* grows with frequency for SS.
    share_1x = power[("rename", "1.0x", "SS")] / power[("other", "1.0x", "SS")]
    share_4x = power[("rename", "4.0x", "SS")] / power[("other", "4.0x", "SS")]
    assert share_4x >= share_1x
