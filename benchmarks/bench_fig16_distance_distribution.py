"""Fig. 16: cumulative fraction of source operand distances.

Paper: with the 1023 limit available, generated code never actually exceeds
distance 127; most distances are within 32, and 30-40% of operands name the
immediately preceding instruction.  This is the evidence that a short
operand field suffices — the basis for max distance 31 in Table I.
"""

from repro.harness import fig16_distance_distribution


def test_fig16_distance_distribution(regenerate):
    result = regenerate(fig16_distance_distribution)
    cdf = {
        (r["workload"], r["distance<="]): r["cumulative_fraction"]
        for r in result["rows"]
        if isinstance(r["distance<="], int)
    }
    max_rows = {
        r["workload"]: r["distance<="]
        for r in result["rows"]
        if not isinstance(r["distance<="], int)
    }

    for workload in ("dhrystone", "coremark"):
        # 30-40%+ of operands are the previous instruction's result.
        assert cdf[(workload, 1)] >= 0.28
        # Most distances fall within 32 (paper's headline observation).
        assert cdf[(workload, 32)] >= 0.90
        # Monotone CDF reaching 1.0 by 128.
        assert cdf[(workload, 128)] == 1.0
        previous = 0.0
        for point in (1, 2, 4, 8, 16, 32, 64, 128):
            assert cdf[(workload, point)] >= previous
            previous = cdf[(workload, point)]
        # The actual maximum distance is far below the 1023 limit.
        max_distance = int(max_rows[workload].split("=")[1])
        assert max_distance < 127
