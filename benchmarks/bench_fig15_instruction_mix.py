"""Fig. 15: fraction of retired instruction types (CoreMark), SS total = 1.

Paper: STRAIGHT RAW needs far more instructions than SS — almost entirely
added RMOVs — and RE+ cuts the added RMOVs to roughly 20% of the SS
instruction count.  Reproduction: same decomposition; our RAW baseline is
already tighter than the paper's, RE+ lands at the paper's ~20%-of-SS RMOV
level.
"""

from repro.harness import fig15_instruction_mix


def test_fig15_instruction_mix(regenerate):
    result = regenerate(fig15_instruction_mix)
    rows = {r["model"]: r for r in result["rows"]}
    ss = rows["SS"]
    raw = rows["STRAIGHT-RAW"]
    re_plus = rows["STRAIGHT-RE+"]

    # SS executes no RMOVs; STRAIGHT's extra instructions are mostly RMOVs.
    assert ss["rmov"] == 0
    raw_extra = raw["total"] - ss["total"]
    assert raw["rmov"] >= 0.7 * raw_extra

    # RE+ removes a large share of RAW's RMOVs (paper: drastic reduction).
    assert re_plus["rmov"] < 0.65 * raw["rmov"]

    # Added RMOVs in RE+ are in the paper's ~20%-of-SS ballpark.
    assert re_plus["rmov"] / ss["total"] < 0.30

    # Non-RMOV work is essentially the same program on both ISAs.
    assert abs(raw["jump_branch"] - ss["jump_branch"]) / ss["jump_branch"] < 0.15
    for group in ("load", "store"):
        assert re_plus[group] <= ss[group] * 1.6  # spills/reloads allowed

    # Orderings of total counts.
    assert raw["total_norm"] > re_plus["total_norm"] > 1.0


def test_dhrystone_mix_lighter_than_coremark(regenerate):
    coremark = regenerate(fig15_instruction_mix)
    from repro.harness.experiments import fig15_instruction_mix as mix

    dhrystone = mix("dhrystone")
    cm_raw = [r for r in coremark["rows"] if r["model"] == "STRAIGHT-RAW"][0]
    dh_raw = [r for r in dhrystone["rows"] if r["model"] == "STRAIGHT-RAW"][0]
    # Paper §VI-A: CoreMark keeps more live values across flows than
    # Dhrystone, so its RAW overhead is larger.
    assert cm_raw["total_norm"] > dh_raw["total_norm"]
