"""§VI-B: sensitivity to the maximum-distance limit.

Paper: shrinking the limit from 1023 to 31 costs only ~1% on CoreMark —
the basis for building small cores (MAX_RP = 31 + ROB).  Reproduction:
the performance change stays within a few percent while the relay RMOVs
added by distance bounding appear in the instruction count.
"""

from repro.harness import sensitivity_max_distance


def test_sensitivity_max_distance(regenerate):
    result = regenerate(sensitivity_max_distance)
    rows = {r["max_distance"]: r for r in result["rows"]}

    # 127 adds nothing: the generated code never exceeds it (Fig. 16).
    assert rows[127]["instructions"] == rows[1023]["instructions"]
    assert rows[127]["cycles"] == rows[1023]["cycles"]

    # 31 forces relay RMOVs into the binary...
    assert rows[31]["instructions"] > rows[1023]["instructions"]

    # ...but the performance change is small (paper: ~1%).
    assert abs(rows[31]["relative_perf"] - 1.0) < 0.05
