"""Fig. 14: CoreMark with a TAGE predictor instead of gshare.

Paper: better prediction shrinks SS's recovery losses, so STRAIGHT's
*relative* performance drops versus the gshare configuration — but
STRAIGHT-4way still wins (~10% in the paper).  Reproduction shape: TAGE
raises accuracy for both architectures, the STRAIGHT margin narrows versus
Fig. 11, and the 4-way RE+ model stays at or above SS.
"""

from repro.harness import fig11_performance_4way, fig14_tage


def test_fig14_tage(regenerate):
    result = regenerate(fig14_tage)
    perf = {(r["class"], r["model"]): r["relative_perf"] for r in result["rows"]}
    accuracy = {
        (r["class"], r["model"]): r["predictor_accuracy"] for r in result["rows"]
    }

    # STRAIGHT-4way RE+ keeps a comparable-or-better position under TAGE.
    assert perf[("4-way", "RE+")] >= 1.0
    # The small core stays comparable.
    assert perf[("2-way", "RE+")] > 0.9

    # TAGE must actually predict well here.
    for key, acc in accuracy.items():
        assert acc > 0.85, (key, acc)


def test_tage_narrows_the_gap_vs_gshare(regenerate):
    gshare = fig11_performance_4way()
    tage = regenerate(fig14_tage)
    gshare_re = [
        r["relative_perf"]
        for r in gshare["rows"]
        if r["workload"] == "coremark" and r["model"] == "STRAIGHT-RE+"
    ][0]
    tage_re = [
        r["relative_perf"]
        for r in tage["rows"]
        if r["class"] == "4-way" and r["model"] == "RE+"
    ][0]
    # Paper: "relative performances of STRAIGHT is reduced" with TAGE.
    assert tage_re <= gshare_re + 0.02
