"""Shared benchmark helpers.

Each ``bench_*`` file regenerates one paper table/figure through
:mod:`repro.harness`, asserts the *shape* of the result (who wins, rough
factors, orderings — see EXPERIMENTS.md for paper-vs-measured), and reports
the regeneration wall time through pytest-benchmark.

Timing runs are memoized inside the harness, so a figure's first
regeneration does the simulation work and subsequent figures reuse shared
runs, exactly like the paper's evaluation scripts would.
"""

import pytest


def run_once(benchmark, experiment):
    """Benchmark one experiment with a single timed round."""
    return benchmark.pedantic(experiment, rounds=1, iterations=1)


@pytest.fixture
def regenerate(benchmark):
    def _regenerate(experiment):
        result = run_once(benchmark, experiment)
        print()
        print(result["text"])
        return result

    return _regenerate
