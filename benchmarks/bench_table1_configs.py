"""Table I: evaluated models — regenerate and check the printed parameters."""

from repro.harness import table1


def test_table1_configs(regenerate):
    result = regenerate(table1)
    rows = {r["Model"]: r for r in result["rows"]}
    assert set(rows) == {"SS-2way", "STRAIGHT-2way", "SS-4way", "STRAIGHT-4way"}

    # The table's defining equalizations (paper Table I):
    for way in ("2way", "4way"):
        ss, st = rows[f"SS-{way}"], rows[f"STRAIGHT-{way}"]
        assert ss["ROB Capacity"] == st["ROB Capacity"]
        assert ss["Register File"] == st["Register File"]
        assert ss["Scheduler"] == st["Scheduler"]
        assert ss["LSQ"] == st["LSQ"]
        assert ss["Commit Width"] == st["Commit Width"]
        # ...except the front-end: STRAIGHT is 6 deep, SS 8 deep.
        assert ss["Front-end latency"] == 8
        assert st["Front-end latency"] == 6

    assert rows["SS-2way"]["ROB Capacity"] == 64
    assert rows["SS-4way"]["ROB Capacity"] == 224
    assert rows["SS-2way"]["L3"] == "N/A"
    assert rows["SS-4way"]["L3"] != "N/A"
