"""Fig. 13: the effect of the misprediction penalty (CoreMark).

Paper: idealizing SS's misprediction penalty to zero is worth ~20% (matching
[14]'s report for RAM-based RMT + ROB walking); STRAIGHT's rapid recovery
captures that benefit with simple hardware.  The figure normalizes
everything to SS-2way.

Reproduction shape: SS-no-penalty >> SS at both widths; STRAIGHT RE+ sits
between SS and the no-penalty ideal at 4-way; STRAIGHT pays exactly one
recovery stall cycle per misprediction while SS pays tens (ROB walk).
"""

from repro.harness import fig13_mispredict_penalty, timed_run
from repro.core.configs import ss_4way, straight_4way


def test_fig13_mispredict_penalty(regenerate):
    result = regenerate(fig13_mispredict_penalty)
    perf = {r["model"]: r["relative_perf"] for r in result["rows"]}

    # The penalty matters a lot for the superscalar (paper: ~20% effect).
    assert perf["SS no-penalty 2-way"] > perf["SS 2-way"] * 1.05
    assert perf["SS no-penalty 4-way"] > perf["SS 4-way"] * 1.20

    # STRAIGHT RE+ recovers part of that gap at 4-way without idealization.
    assert perf["STRAIGHT RE+ 4-way"] > perf["SS 4-way"] * 1.02
    assert perf["STRAIGHT RE+ 4-way"] < perf["SS no-penalty 4-way"]

    # 4-way beats 2-way for every model (sanity of the shared normalization).
    assert perf["SS 4-way"] >= perf["SS 2-way"] * 0.95


def test_recovery_cost_asymmetry(benchmark):
    """Per-mispredict recovery: one ROB-entry read vs an RMT-restoring walk."""
    ss, st = benchmark.pedantic(
        lambda: (
            timed_run("coremark", "SS", ss_4way()),
            timed_run("coremark", "STRAIGHT-RE+", straight_4way()),
        ),
        rounds=1,
        iterations=1,
    )
    assert st.stats.recovery_stall_cycles == st.stats.branch_mispredicts
    assert st.stats.rob_walk_cycles == 0
    ss_per_event = ss.stats.recovery_stall_cycles / max(
        1, ss.stats.branch_mispredicts
    )
    assert ss_per_event > 5  # "several tens of cycles" territory
    assert ss.stats.rob_walk_cycles > 0
