"""Fig. 12: relative performance of the 2-way (mobile-class) models.

Paper: the smaller core amplifies RMOV overhead ("each RMOV behaves as one
ALU instruction ... the impact becomes relatively large in the smaller
configuration"); STRAIGHT-2way RE+ loses 7.4% on Dhrystone but wins 5.5% on
CoreMark.  Reproduction shape: RAW is hurt more at 2-way than at 4-way, RE+
recovers most of it, and the STRAIGHT-vs-SS gap is tighter than at 4-way.
"""

from repro.harness import fig11_performance_4way, fig12_performance_2way


def test_fig12_performance_2way(regenerate):
    result = regenerate(fig12_performance_2way)
    perf = {
        (r["workload"], r["model"]): r["relative_perf"] for r in result["rows"]
    }

    # RE+ >= RAW at the small core too.
    for workload in ("dhrystone", "coremark"):
        assert perf[(workload, "STRAIGHT-RE+")] >= perf[(workload, "STRAIGHT-RAW")] - 0.02

    # STRAIGHT-2way is comparable to SS-2way (within ~25% either way),
    # i.e. the architecture also works as a small efficient core (§VI-A).
    for (workload, model), value in perf.items():
        assert 0.75 < value < 1.35, (workload, model, value)


def test_rmov_overhead_hurts_more_at_2way(regenerate):
    """The paper's cross-figure observation: RAW's relative performance is
    worse on the 2-way machine than on the 4-way machine (fewer empty issue
    slots to absorb the added RMOVs)."""
    result_4way = fig11_performance_4way()
    result_2way = regenerate(fig12_performance_2way)
    raw_4way = {
        r["workload"]: r["relative_perf"]
        for r in result_4way["rows"]
        if r["model"] == "STRAIGHT-RAW"
    }
    raw_2way = {
        r["workload"]: r["relative_perf"]
        for r in result_2way["rows"]
        if r["model"] == "STRAIGHT-RAW"
    }
    for workload in ("dhrystone", "coremark"):
        assert raw_2way[workload] <= raw_4way[workload] + 0.03
