"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — decompositions of its mechanisms:

* RE+ = producer sinking (Fig. 10(b)) + loop demotion (Fig. 10(c)): each
  mechanism measured alone;
* SS's misprediction cost split into ROB-walk vs front-end-depth parts,
  showing the walk dominates (the basis of Fig. 13);
* the one-SPADD-per-group dispatch restriction costs ~nothing (§III-B's
  claim that cascaded SPADD adders are unnecessary).
"""

from repro.harness import (
    ablate_re_plus,
    ablate_recovery,
    ablate_spadd_throughput,
)


def test_ablation_re_plus(regenerate):
    result = regenerate(ablate_re_plus)
    rows = {r["variant"]: r for r in result["rows"]}

    # Each mechanism alone removes static RMOVs relative to RAW.
    assert rows["RAW+sinking"]["static_rmovs"] < rows["RAW"]["static_rmovs"]
    assert rows["RAW+demotion"]["static_rmovs"] < rows["RAW"]["static_rmovs"]
    # Both together give the smallest binary.
    assert rows["RE+ (both)"]["instructions"] <= min(
        rows["RAW+sinking"]["instructions"],
        rows["RAW+demotion"]["instructions"],
    )
    # And RE+ never loses to RAW.
    assert rows["RE+ (both)"]["relative_perf"] >= 1.0 - 0.02


def test_ablation_recovery(regenerate):
    result = regenerate(ablate_recovery)
    rows = {r["variant"]: r for r in result["rows"]}

    # Removing the ROB walk dominates the SS recovery cost...
    walk_gain = rows["SS, walk fully overlapped"]["relative_perf"]
    depth_gain = rows["SS, 6-deep front end"]["relative_perf"]
    assert walk_gain > depth_gain
    assert walk_gain > 1.05

    # ...and overlapping it drives the recovery stalls to zero.
    assert rows["SS, walk fully overlapped"]["recovery_stalls"] == 0

    # STRAIGHT lands between stock SS and the walk-free SS ideal.
    straight = rows["STRAIGHT RE+"]["relative_perf"]
    assert 1.0 < straight <= rows["SS, both"]["relative_perf"] + 0.05


def test_ablation_spadd(regenerate):
    result = regenerate(ablate_spadd_throughput)
    rows = {r["spadd_per_group"]: r for r in result["rows"]}

    # The §III-B claim: one SPADD per group is enough — widening the SPADD
    # datapath buys (essentially) nothing.
    assert rows[1]["cycles"] <= rows[4]["cycles"] * 1.01
    # The restriction does fire occasionally (it is modeled, not vacuous)...
    assert rows[1]["spadd_stalls"] >= 0
    # ...and disappears when the limit is raised.
    assert rows[4]["spadd_stalls"] == 0
