"""Fig. 11: relative performance of the 4-way models.

Paper: STRAIGHT RE+ beats SS-4way by 15.7% (Dhrystone) and 18.8% (CoreMark);
STRAIGHT RAW *loses* ~4% on CoreMark until redundancy elimination is applied.

Reproduction shape (see EXPERIMENTS.md): the orderings hold — RE+ is the
best STRAIGHT binary, it beats SS on CoreMark, and the advantage grows from
2-way to 4-way — with smaller margins, mainly because our baseline RAW
compiler already emits far fewer RMOVs than the paper's RAW (≈1.3x vs ≈2x
SS instruction count), leaving less for RE+ to win back.
"""

from repro.harness import fig11_performance_4way


def test_fig11_performance_4way(regenerate):
    result = regenerate(fig11_performance_4way)
    perf = {
        (r["workload"], r["model"]): r["relative_perf"] for r in result["rows"]
    }

    # SS is the normalization baseline.
    assert perf[("dhrystone", "SS")] == 1.0
    assert perf[("coremark", "SS")] == 1.0

    # Headline: STRAIGHT RE+ beats the same-sized superscalar on CoreMark.
    assert perf[("coremark", "STRAIGHT-RE+")] > 1.02

    # RE+ never loses to RAW (redundancy elimination only removes work).
    for workload in ("dhrystone", "coremark"):
        assert perf[(workload, "STRAIGHT-RE+")] >= perf[(workload, "STRAIGHT-RAW")] - 0.02

    # Everything lands in a sane band around the baseline.
    for (workload, model), value in perf.items():
        assert 0.7 < value < 1.5, (workload, model, value)
