"""Setuptools shim.

`pip install -e .` uses pyproject.toml; this file additionally enables
`python setup.py develop` as a fallback for fully offline environments
where pip's editable-install path is unavailable (it needs the `wheel`
package, which an air-gapped box may not have).
"""

from setuptools import setup

setup()
